#include "core/campaign.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <new>
#include <thread>

#include "analysis/model_checker.hpp"
#include "core/chaos.hpp"
#include "hv/recovery.hpp"

namespace ii::core {

std::string to_string(Mode mode) {
  return mode == Mode::Exploit ? "exploit" : "injection";
}

PreflightReport Campaign::preflight(unsigned depth, unsigned threads) const {
  PreflightReport report;
  report.depth = depth;
  for (const hv::XenVersion version : config_.versions) {
    const hv::VersionPolicy policy = hv::VersionPolicy::for_version(version);

    analysis::ModelCheckConfig mc;
    mc.version = version;
    mc.depth = depth;
    mc.threads = threads;
    mc.profiler = config_.profiler;
    mc.status = config_.status;
    const analysis::ModelCheckResult result = analysis::run_model_check(mc);

    PreflightVersionReport v;
    v.version = version;
    // The grant-downgrade leak is excluded: grant ops are not in the
    // default alphabet (model_checker.hpp), so only the memory XSAs decide
    // the expectation.
    v.expected_vulnerable = policy.xsa148_l2_pse_unvalidated ||
                            policy.xsa182_l4_fastpath_unvalidated ||
                            policy.xsa212_unchecked_exchange_output;
    v.states_explored = result.states_explored;
    v.violations_found = result.violations_found;
    v.truncated = result.truncated;
    v.reached_xsa =
        result.reached(analysis::ErroneousStateClass::Xsa148SuperpageWindow) ||
        result.reached(analysis::ErroneousStateClass::Xsa182WritableSelfMap) ||
        result.reached(analysis::ErroneousStateClass::Xsa212IdtClobber) ||
        result.reached(analysis::ErroneousStateClass::Xsa387StaleGrantStatus);
    report.versions.push_back(v);
  }
  return report;
}

PlatformPool::Entry& PlatformPool::lease(const guest::PlatformConfig& config) {
  const auto key = std::make_pair(config.version, config.injector_enabled);
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    // Build sink-less and capture the baseline before any cell touches the
    // platform; a construction failure leaves no half-built pool entry.
    Entry entry;
    entry.platform = std::make_unique<guest::VirtualPlatform>(config);
    entry.baseline = entry.platform->baseline();
    it = pool_.emplace(key, std::move(entry)).first;
  }
  return it->second;
}

namespace {

/// Scope guard for one pooled cell: on exit — normal or unwinding — detach
/// the cell's sink and span profiler and rewind the platform to the pool
/// baseline, so the pool never retains a dirty platform or a dangling
/// observer pointer. The rewind is timed as the cell's restore span (its
/// deterministic step count — frames copied — is added by run_cell from
/// the snapshot stats afterwards).
struct Lease {
  guest::VirtualPlatform& platform;
  const guest::PlatformBaseline& baseline;
  obs::SpanProfiler* profiler;
  ~Lease() {
    platform.hv().set_trace_sink(nullptr);
    platform.hv().set_span_profiler(nullptr);
    const obs::ScopedSpan restore_span{profiler, obs::kSpanRestore};
    platform.restore(baseline);
  }
};

}  // namespace

void Campaign::run_attempt(CellResult& cell, UseCase& use_case,
                           guest::VirtualPlatform& platform, Mode mode,
                           obs::TraceSink& sink,
                           obs::SpanProfiler* profiler) const {
  try {
    {
      // Step source = the cell's sink, so inject/monitor steps are the
      // trace events each phase emitted — deterministic, and credited even
      // when the phase throws (the delta is read in the span destructor).
      const obs::ScopedSpan inject_span{profiler, obs::kSpanInject,
                                        obs::SpanKind::Det, &sink};
      cell.outcome = mode == Mode::Exploit ? use_case.run_exploit(platform)
                                           : use_case.run_injection(platform);
    }
    const obs::ScopedSpan monitor_span{profiler, obs::kSpanMonitor,
                                       obs::SpanKind::Det, &sink};
    cell.err_state = use_case.erroneous_state_present(platform);
    cell.violation = use_case.security_violation(platform);
  } catch (const std::exception& e) {
    // Per-cell isolation: a throwing use case (or a tripped budget
    // watchdog) fails this cell, never the campaign.
    cell.failure = e.what();
    cell.outcome.completed = false;
    cell.outcome.notes.push_back("cell failed: " + cell.failure);
  } catch (...) {
    cell.failure = "non-standard exception";
    cell.outcome.completed = false;
    cell.outcome.notes.push_back("cell failed: " + cell.failure);
  }
  if (config_.attempt_recovery &&
      (cell.failed() || platform.hv().crashed() || platform.hv().cpu_hung())) {
    // Lift the budget before recovering: the watchdog's trip point is
    // deterministic, so everything after it is too, and recovery must be
    // able to emit its own events.
    sink.set_budget(0, 0);
    // The hypervisor's own recovery phases (pre_audit, idt, frame_table,
    // p2m, domains, grants, post_audit) nest under this span — the
    // platform's profiler is this same instance.
    const obs::ScopedSpan recover_span{profiler, obs::kSpanRecover,
                                       obs::SpanKind::Det, &sink};
    try {
      const hv::RecoveryReport rec = platform.hv().recover();
      cell.recovered = rec.succeeded();
      // Re-audit on the recovered platform: the cell now measures whether
      // the erroneous state survived the micro-reboot.
      cell.err_state = use_case.erroneous_state_present(platform);
      cell.violation = use_case.security_violation(platform);
    } catch (const std::exception& e) {
      cell.outcome.notes.push_back("recovery failed: " +
                                   std::string{e.what()});
    }
  }
}

CellResult Campaign::run_cell(UseCase& use_case, hv::XenVersion version,
                              Mode mode) const {
  PlatformPool pool;
  return run_cell(use_case, version, mode, pool);
}

CellResult Campaign::run_cell(UseCase& use_case, hv::XenVersion version,
                              Mode mode, PlatformPool& pool) const {
  return run_cell(use_case, version, mode, pool, config_.profiler);
}

CellResult Campaign::run_cell(UseCase& use_case, hv::XenVersion version,
                              Mode mode, PlatformPool& pool,
                              obs::SpanProfiler* prof) const {
  // One sink per cell: the platform is private to the cell while it runs,
  // so the sink needs no locking, and seq numbers restart at 0 — traces are
  // identical no matter which worker thread ran the cell. With
  // capture_trace off the ring mask is 0: only the cheap counters advance.
  obs::TraceSink sink{config_.trace_capacity,
                      config_.capture_trace ? obs::kAllCategories : 0u};
  sink.set_budget(config_.max_cell_hypercalls, config_.max_cell_steps);

  guest::PlatformConfig pc = config_.platform;
  pc.version = version;
  // The exploit runs against a stock hypervisor; the injection against the
  // patched build — keeping each mode's environment honest.
  pc.injector_enabled = mode == Mode::Injection;

  CellResult cell;
  cell.use_case = use_case.name();
  cell.version = version;
  cell.mode = mode;

  bool reused = false;
  hv::SnapshotStats snap{};
  const obs::ScopedSpan cell_span{prof, obs::kSpanCell};
  // ii-analyze:allow(determinism): wall_us is wall-clock by contract; the
  // deterministic runs use --logical-time, which bypasses this reading.
  const auto start = std::chrono::steady_clock::now();
  try {
    // Chaos cell.alloc_fail: platform/guest allocation fails during cell
    // setup. Thrown before any platform is touched, so it exercises the
    // same containment path as a real bad_alloc out of lease(): the catch
    // below turns it into a failed cell for the supervisor's retry ladder.
    if (chaos_fire("cell.alloc_fail")) throw std::bad_alloc{};
    if (config_.reuse_platforms) {
      // Lease a pooled platform parked at its boot baseline; the sink is
      // attached only now, so the trace covers exactly the cell's own
      // execution whether the platform is fresh or reused.
      pc.trace_sink = nullptr;
      PlatformPool::Entry* entry = nullptr;
      {
        const obs::ScopedSpan acquire_span{prof, obs::kSpanAcquire};
        entry = &pool.lease(pc);
      }
      reused = entry->warm;
      entry->warm = true;
      guest::VirtualPlatform& platform = *entry->platform;
      platform.hv().reset_snapshot_stats();
      platform.hv().set_trace_sink(&sink);
      platform.hv().set_span_profiler(prof);
      {
        Lease lease{platform, entry->baseline, prof};
        run_attempt(cell, use_case, platform, mode, sink, prof);
      }
      // The release rewind runs inside the stats window: frames_copied is
      // then the set of frames *this cell* dirtied, independent of which
      // cells the worker ran before — serial and parallel runs agree.
      snap = platform.hv().snapshot_stats();
      if (prof != nullptr) {
        // The restore span's deterministic step count: the rewind copies
        // exactly the frames this cell dirtied.
        prof->add({obs::kSpanCell, obs::kSpanRestore}, 0, snap.frames_copied);
      }
    } else {
      std::unique_ptr<guest::VirtualPlatform> owned;
      {
        const obs::ScopedSpan acquire_span{prof, obs::kSpanAcquire};
        pc.trace_sink = &sink;
        owned = std::make_unique<guest::VirtualPlatform>(pc);
      }
      guest::VirtualPlatform& platform = *owned;
      platform.hv().set_span_profiler(prof);
      run_attempt(cell, use_case, platform, mode, sink, prof);
      platform.hv().set_span_profiler(nullptr);
    }
  } catch (const std::exception& e) {
    // Platform construction itself failed; there is nothing to audit.
    cell.failure = e.what();
    cell.outcome.completed = false;
  } catch (...) {
    cell.failure = "non-standard exception";
    cell.outcome.completed = false;
  }
  cell.wall_us =
      config_.logical_time
          ? sink.emitted()
          : static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    // ii-analyze:allow(determinism): the non-logical-time
                    // branch is wall-clock by contract.
                    std::chrono::steady_clock::now() - start)
                    .count());
  cell.hypercalls = sink.count(obs::TraceCategory::HypercallEnter);
  cell.metrics = obs::sink_metrics(sink);
  if (config_.reuse_platforms) {
    cell.metrics.counters["snapshot.frames_copied"] += snap.frames_copied;
    cell.metrics.counters["hash.frames_rehashed"] += snap.frames_rehashed;
    cell.metrics.counters["cell.reuse_hits"] += reused ? 1 : 0;
  }
  if (config_.capture_trace) cell.trace = sink.ring().snapshot();
  return cell;
}

std::vector<CellResult> Campaign::run(
    const std::vector<std::unique_ptr<UseCase>>& cases) const {
  std::vector<CellResult> results;
  PlatformPool pool;  // shared across the whole matrix: one boot per cfg
  obs::StatusBoard* const status = config_.status;
  if (status != nullptr) {
    status->campaign_begin(
        cases.size() * config_.versions.size() * config_.modes.size(), 1);
  }
  for (const auto& use_case : cases) {
    for (const hv::XenVersion version : config_.versions) {
      for (const Mode mode : config_.modes) {
        results.push_back(run_cell(*use_case, version, mode, pool));
        if (status != nullptr) status->cell_done(0, results.back().failed());
      }
    }
  }
  if (status != nullptr) status->campaign_end();
  return results;
}

std::vector<CellResult> Campaign::run_parallel(
    const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory,
    unsigned threads) const {
  // Materialize the cell list once (indices into the per-worker case set).
  struct Cell {
    std::size_t case_index;
    hv::XenVersion version;
    Mode mode;
  };
  std::vector<Cell> cells;
  const std::size_t n_cases = factory().size();
  for (std::size_t c = 0; c < n_cases; ++c) {
    for (const hv::XenVersion version : config_.versions) {
      for (const Mode mode : config_.modes) {
        cells.push_back({c, version, mode});
      }
    }
  }

  std::vector<CellResult> results(cells.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mu;
  std::exception_ptr factory_error;
  const unsigned n_workers =
      std::max(1u, std::min<unsigned>(threads, cells.size()));
  obs::StatusBoard* const status = config_.status;
  if (status != nullptr) status->campaign_begin(cells.size(), n_workers);
  // Per-worker span lanes: profilers are single-writer, so each worker
  // records into its own instance (sharing the campaign profiler's epoch,
  // for comparable Chrome-trace timestamps) and the lanes are merged after
  // the join. Merging sums by path, so the aggregated tree is identical to
  // a serial run's regardless of how the scheduler dealt the cells.
  std::vector<std::unique_ptr<obs::SpanProfiler>> lanes;
  if (config_.profiler != nullptr) {
    lanes.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      lanes.push_back(
          std::make_unique<obs::SpanProfiler>(config_.profiler->epoch()));
      lanes.back()->set_tid(w);
      lanes.back()->set_record_events(config_.profiler->record_events());
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) {
    workers.emplace_back([&, w] {
      // Private UseCase instances: per-run state must not be shared. The
      // platform pool is per-worker too — platforms are not thread-safe.
      //
      // Nothing in this body may let an exception escape: an unhandled
      // throw in a std::thread is std::terminate for the whole process,
      // i.e. one bad factory or platform boot killing every sibling cell.
      std::vector<std::unique_ptr<UseCase>> cases;
      try {
        cases = factory();
      } catch (...) {
        // This worker has no cases to run; siblings drain the cell queue.
        // Remembered so the campaign can still fail loudly if *no* worker
        // managed to construct its cases.
        const std::lock_guard<std::mutex> lock{error_mu};
        if (!factory_error) factory_error = std::current_exception();
        return;
      }
      PlatformPool pool;
      obs::SpanProfiler* const lane =
          lanes.empty() ? nullptr : lanes[w].get();
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= cells.size()) return;
        try {
          results[i] = run_cell(*cases[cells[i].case_index], cells[i].version,
                                cells[i].mode, pool, lane);
        } catch (...) {
          // run_cell already isolates use-case and platform failures; this
          // is the backstop for anything else (e.g. a throwing name()).
          // The failure lands on the owning cell, never on siblings.
          CellResult& cell = results[i];
          cell.version = cells[i].version;
          cell.mode = cells[i].mode;
          try {
            cell.use_case = cases[cells[i].case_index]->name();
          } catch (...) {
          }
          try {
            throw;
          } catch (const std::exception& e) {
            cell.failure = e.what();
          } catch (...) {
            cell.failure = "non-standard exception";
          }
          cell.outcome.completed = false;
        }
        completed.fetch_add(1);
        if (status != nullptr) status->cell_done(w, results[i].failed());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (status != nullptr) status->campaign_end();
  for (const auto& lane : lanes) config_.profiler->merge(*lane);
  // Every worker's factory threw: no cell ever ran, and silently returning
  // default-constructed results would look like a clean all-fail matrix.
  if (factory_error && completed.load() < cells.size()) {
    std::rethrow_exception(factory_error);
  }
  return results;
}

}  // namespace ii::core
