// Intrusion-model coverage accounting.
//
// The paper's conclusion plans "an open-source list of tests and
// experiments covering various Intrusion Models". Coverage accounting is
// what makes that list auditable: given a catalogue of intrusion models
// (e.g. derived from the §IV-D advisory study) and the executable use
// cases, report which models have an injector script behind them and which
// are still open. A model is covered by a use case when they agree on the
// two dimensions that determine the injection mechanics: target component
// and abusive functionality.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/usecase.hpp"

namespace ii::core {

struct ModelCoverage {
  IntrusionModel model;
  /// Names of the executable use cases whose model matches.
  std::vector<std::string> covered_by;
  [[nodiscard]] bool covered() const { return !covered_by.empty(); }
};

/// Match every catalogue model against the executable use cases.
[[nodiscard]] std::vector<ModelCoverage> compute_model_coverage(
    std::span<const IntrusionModel> catalogue,
    const std::vector<std::unique_ptr<UseCase>>& cases);

/// Summary renderer: per-model coverage plus the covered/total ratio.
[[nodiscard]] std::string render_coverage(
    const std::vector<ModelCoverage>& coverage);

}  // namespace ii::core
