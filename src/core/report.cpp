#include "core/report.hpp"

#include <algorithm>
#include <sstream>

namespace ii::core {

namespace {

/// Width of a UTF-8 string in code points (good enough for our check marks
/// and box-drawing-free tables).
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;  // count non-continuation bytes
  }
  return w;
}

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  const std::size_t w = display_width(s);
  if (w < width) out.append(width - w, ' ');
  return out;
}

constexpr const char* kCheck = "✓";          // ✓
constexpr const char* kShield = "[shield]";       // handled by the system

const CellResult* find_cell(const std::vector<CellResult>& results,
                            const std::string& name, hv::XenVersion version,
                            Mode mode) {
  for (const CellResult& r : results) {
    if (r.use_case == name && r.version == version && r.mode == mode) {
      return &r;
    }
  }
  return nullptr;
}

std::vector<std::string> case_names(const std::vector<CellResult>& results) {
  std::vector<std::string> names;
  for (const CellResult& r : results) {
    if (std::find(names.begin(), names.end(), r.use_case) == names.end()) {
      names.push_back(r.use_case);
    }
  }
  return names;
}

}  // namespace

std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = display_width(headers[c]);
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }
  std::ostringstream os;
  auto line = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << ' ' << pad(c < row.size() ? row[c] : "", widths[c]) << " |";
    }
    os << '\n';
  };
  line();
  emit(headers);
  line();
  for (const auto& row : rows) emit(row);
  line();
  return os.str();
}

std::string render_use_case_table(
    const std::vector<std::unique_ptr<UseCase>>& cases) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& use_case : cases) {
    rows.push_back(
        {use_case->name(), to_string(use_case->model().functionality)});
  }
  return render_table({"Use Case", "Abusive Functionality"}, rows);
}

std::string render_rq1_table(const std::vector<CellResult>& results) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : case_names(results)) {
    std::vector<std::string> row{name};
    for (const Mode mode : {Mode::Exploit, Mode::Injection}) {
      const CellResult* cell = find_cell(results, name, hv::kXen46, mode);
      if (cell == nullptr) {
        row.insert(row.end(), {"-", "-"});
        continue;
      }
      row.push_back(cell->err_state ? kCheck : "x");
      row.push_back(cell->violation ? kCheck : "x");
    }
    rows.push_back(std::move(row));
  }
  return render_table({"Use Case (Xen 4.6)", "Exploit Err.St.",
                       "Exploit Sec.Viol.", "Inject Err.St.",
                       "Inject Sec.Viol."},
                      rows);
}

std::string render_table3(const std::vector<CellResult>& results) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : case_names(results)) {
    std::vector<std::string> row{name};
    for (const hv::XenVersion version : {hv::kXen48, hv::kXen413}) {
      const CellResult* cell =
          find_cell(results, name, version, Mode::Injection);
      if (cell == nullptr) {
        row.insert(row.end(), {"-", "-"});
        continue;
      }
      row.push_back(cell->err_state ? kCheck : "x");
      row.push_back(cell->violation ? kCheck
                                    : (cell->handled() ? kShield : "x"));
    }
    rows.push_back(std::move(row));
  }
  return render_table({"Use Case", "4.8 Err.State", "4.8 Sec.Viol.",
                       "4.13 Err.State", "4.13 Sec.Viol."},
                      rows);
}

std::string render_csv(const std::vector<CellResult>& results) {
  std::ostringstream os;
  os << "use_case,version,mode,completed,rc,err_state,violation,handled,"
        "wall_us,hypercalls,attempts,recovered,quarantined\n";
  for (const CellResult& cell : results) {
    os << cell.use_case << ',' << cell.version.to_string() << ','
       << to_string(cell.mode) << ',' << (cell.outcome.completed ? 1 : 0)
       << ',' << cell.outcome.rc << ',' << (cell.err_state ? 1 : 0) << ','
       << (cell.violation ? 1 : 0) << ',' << (cell.handled() ? 1 : 0) << ','
       << cell.wall_us << ',' << cell.hypercalls << ',' << cell.attempts
       << ',' << (cell.recovered ? 1 : 0) << ','
       << (cell.quarantined ? 1 : 0) << '\n';
  }
  return os.str();
}

std::string render_metrics_summary(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::vector<std::vector<std::string>> counter_rows;
  for (const auto& [name, value] : snapshot.counters) {
    counter_rows.push_back({name, std::to_string(value)});
  }
  os << render_table({"Counter", "Value"}, counter_rows);
  if (!snapshot.histograms.empty()) {
    auto fmt = [](double v) {
      std::ostringstream s;
      s.precision(1);
      s << std::fixed << v;
      return s.str();
    };
    std::vector<std::vector<std::string>> histo_rows;
    for (const auto& [name, data] : snapshot.histograms) {
      const double mean =
          data.count ? static_cast<double>(data.sum) /
                           static_cast<double>(data.count)
                     : 0.0;
      histo_rows.push_back({name, std::to_string(data.count), fmt(mean),
                            fmt(data.p50), fmt(data.p95), fmt(data.p99)});
    }
    os << render_table({"Histogram", "Count", "Mean", "p50", "p95", "p99"},
                       histo_rows);
  }
  return os.str();
}

}  // namespace ii::core
