// Campaign engine: runs use cases across Xen versions and collects the
// per-cell verdicts that make up the paper's tables.
//
// One cell = (use case, version, mode). Each cell runs on a platform at
// its boot baseline — by default a pooled platform delta-restored there
// (CampaignConfig::reuse_platforms), otherwise a freshly booted one — the
// attempt is executed, and the monitor/auditor decide:
//   err_state  — the erroneous state is observably present afterwards;
//   violation  — the use case's security violation materialized;
//   handled    — err_state && !violation (Table III's shield cells).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/usecase.hpp"
#include "guest/platform.hpp"
#include "hv/version.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace ii::core {

/// How the erroneous state is driven into the system.
enum class Mode {
  Exploit,    ///< original third-party PoC against the stock hypervisor
  Injection,  ///< injector script against the patched hypervisor
};

[[nodiscard]] std::string to_string(Mode mode);

struct CellResult {
  std::string use_case;
  hv::XenVersion version{};
  Mode mode{};
  CaseOutcome outcome;          ///< what the attempt reported
  bool err_state = false;       ///< audited after the attempt
  bool violation = false;       ///< observed after the attempt
  std::uint64_t wall_us = 0;    ///< wall-clock time for the cell
  std::uint64_t hypercalls = 0;  ///< HypercallEnter events during the cell
  /// Per-cell observability snapshot (trace/hypercall counters). The cell's
  /// sink starts at seq 0, so metrics and trace depend only on the cell's
  /// own execution — identical under run() and run_parallel().
  obs::MetricsSnapshot metrics;
  /// Captured ring contents, only when CampaignConfig::capture_trace.
  std::vector<obs::TraceEvent> trace;
  /// Execution attempts the supervisor made for this cell (0 when the cell
  /// was quarantined without running, 1 for a plain Campaign::run).
  unsigned attempts = 1;
  /// ReHype recovery ran after a failure/crash and its post-audit was clean.
  bool recovered = false;
  /// The supervisor refused to run the cell after repeated failures of the
  /// same use case.
  bool quarantined = false;
  /// Why the cell failed (escaped exception or budget overrun); empty on a
  /// normally-completed cell. Distinct from outcome.rc, which reports what
  /// the *attempt* observed.
  std::string failure;
  [[nodiscard]] bool handled() const { return err_state && !violation; }
  [[nodiscard]] bool failed() const { return !failure.empty(); }
};

struct CampaignConfig {
  std::vector<hv::XenVersion> versions{hv::kXen46, hv::kXen48, hv::kXen413};
  std::vector<Mode> modes{Mode::Exploit, Mode::Injection};
  /// Base platform shape; version/injector fields are overridden per cell.
  guest::PlatformConfig platform{};
  /// Record full event traces per cell (counters are always collected).
  bool capture_trace = false;
  /// Ring size when capturing. Sized for the busiest paper cell (the
  /// XSA-212 grooming exploit emits ~20k events); ~32 B/event, per cell.
  std::size_t trace_capacity = 65536;
  /// Report wall_us as the cell's emitted trace-event count instead of the
  /// wall clock. Trace steps carry no time, so with this set the rendered
  /// CSV is byte-identical across runs and thread counts — the property the
  /// supervisor's resume machinery depends on.
  bool logical_time = false;
  /// After a failed cell — escaped exception, tripped budget, hypervisor
  /// panic or wedged CPU — run Hypervisor::recover() and record whether the
  /// post-recovery invariant audit came back clean (CellResult::recovered).
  bool attempt_recovery = false;
  /// Deterministic per-cell watchdog: fail the cell once it emits more than
  /// this many HypercallEnter events (0 = unlimited). With reuse_platforms
  /// the budget covers exactly the cell's own execution; without it, the
  /// whole cell including platform boot.
  std::uint64_t max_cell_hypercalls = 0;
  /// Same watchdog over total trace steps (0 = unlimited).
  std::uint64_t max_cell_steps = 0;
  /// Keep one warm platform per (version, mode), snapshotted once and
  /// delta-restored to its boot baseline before every cell instead of
  /// re-booting from scratch. The per-cell trace sink is attached only
  /// after the rewind, so a cell's trace, counters and budget accounting
  /// cover exactly its own execution — identical whether the platform was
  /// freshly built or reused, and identical under run() and run_parallel().
  /// When false, every cell boots a private platform and the sink observes
  /// the boot as well (the pre-reuse behaviour).
  bool reuse_platforms = true;
  /// Optional span profiler (null = instrumentation costs one branch per
  /// site). run_cell records cell/{acquire,restore,inject,monitor,recover}
  /// spans whose counts and steps are deterministic per cell — trace-sink
  /// step deltas and rewind frame counts, never wall time — so the
  /// aggregated tree is identical under run() and run_parallel() at any
  /// thread count (run_parallel gives each worker a private lane profiler
  /// and merges them here after the join; the supervisor does the same).
  obs::SpanProfiler* profiler = nullptr;
  /// Optional live status board: run()/run_parallel() and the supervisor
  /// publish cells done/total, per-worker heartbeats and retry/quarantine
  /// counts; preflight forwards it to the model checker.
  obs::StatusBoard* status = nullptr;
};

/// One warm platform per (version, injector) pair, each parked at its
/// captured boot baseline. Owned by a single worker (not thread-safe):
/// Campaign::run keeps one for the whole matrix, run_parallel one per
/// worker, and the supervisor one per retry worker. run_cell rewinds a
/// leased platform back to the baseline when the cell finishes, so a
/// pooled platform is always clean between cells.
class PlatformPool {
 public:
  struct Entry {
    std::unique_ptr<guest::VirtualPlatform> platform;
    guest::PlatformBaseline baseline;
    bool warm = false;  ///< a previous cell already ran on this platform
  };

  /// Return the pooled platform for `config`, building it (sink-less) and
  /// capturing its baseline on first use. The entry stays pool-owned.
  Entry& lease(const guest::PlatformConfig& config);

  /// Drop every pooled platform so the next lease boots fresh — the last
  /// rung of the supervisor's escalation ladder (a use case that failed
  /// its way into quarantine may have poisoned the warm platforms it ran
  /// on; later use cases must not inherit them).
  void clear() { pool_.clear(); }

 private:
  std::map<std::pair<hv::XenVersion, bool>, Entry> pool_;
};

/// What Campaign::preflight concluded for one configured version.
struct PreflightVersionReport {
  hv::XenVersion version{};
  /// Policy carries at least one of the modelled XSA knobs, so the bounded
  /// space is *expected* to reach an erroneous state.
  bool expected_vulnerable = false;
  /// States the bounded check actually reached / flagged.
  std::uint64_t states_explored = 0;
  std::uint64_t violations_found = 0;
  bool reached_xsa = false;  ///< at least one recognized XSA class
  /// The exploration hit max_states before covering the bounded space.
  bool truncated = false;
  /// The version matches its expectation: vulnerable versions reach an XSA
  /// class, patched versions admit no violation at all. A truncated clean
  /// run is NOT ok — "no violation found" proves nothing about the part of
  /// the space the check never visited (same rule as analysis_cli
  /// --expect clean).
  [[nodiscard]] bool ok() const {
    return expected_vulnerable ? reached_xsa
                               : violations_found == 0 && !truncated;
  }
};

/// Bounded model check of every configured version policy (src/analysis),
/// run before any campaign cell executes.
struct PreflightReport {
  unsigned depth = 0;
  std::vector<PreflightVersionReport> versions;
  /// All versions matched expectations; campaign verdicts over these
  /// policies are meaningful.
  [[nodiscard]] bool ok() const {
    for (const auto& v : versions)
      if (!v.ok()) return false;
    return !versions.empty();
  }
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_{std::move(config)} {}

  /// Model-check each configured version's policy up to `depth` before
  /// running any cell: a patched policy that reaches an XSA erroneous state
  /// (or a vulnerable one that cannot) means the campaign's spec and the
  /// validation engine disagree, and every cell verdict would be suspect.
  /// `threads` shards the checker's frontier (0 = hardware concurrency);
  /// the verdict is identical at any count.
  [[nodiscard]] PreflightReport preflight(unsigned depth = 2,
                                          unsigned threads = 0) const;

  /// Run every (use case × version × mode) cell.
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<std::unique_ptr<UseCase>>& cases) const;

  /// Same matrix, cells distributed over `threads` workers. Each cell owns
  /// a private platform, so cells are embarrassingly parallel — but a
  /// UseCase instance is stateful across a run (per-run members), so every
  /// worker gets its own instances via `factory`. Results come back in the
  /// same deterministic order as run().
  [[nodiscard]] std::vector<CellResult> run_parallel(
      const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory,
      unsigned threads) const;

  /// Run a single cell on a fresh platform (a one-shot pool).
  [[nodiscard]] CellResult run_cell(UseCase& use_case, hv::XenVersion version,
                                    Mode mode) const;

  /// Run a single cell, leasing the platform from `pool` when
  /// reuse_platforms is set (the pool is untouched otherwise). Callers that
  /// run many cells — run(), run_parallel() workers, the supervisor — pass
  /// a long-lived pool so consecutive cells share warm platforms.
  [[nodiscard]] CellResult run_cell(UseCase& use_case, hv::XenVersion version,
                                    Mode mode, PlatformPool& pool) const;

  /// Same, recording spans into `profiler` instead of config().profiler —
  /// the per-worker-lane entry point used by run_parallel() and the
  /// supervisor (profilers are single-writer, like trace sinks).
  [[nodiscard]] CellResult run_cell(UseCase& use_case, hv::XenVersion version,
                                    Mode mode, PlatformPool& pool,
                                    obs::SpanProfiler* profiler) const;

 private:
  /// The attempt + audit + optional recovery on an already-built platform.
  /// Exception-contained: use-case failures land in `cell.failure`.
  void run_attempt(CellResult& cell, UseCase& use_case,
                   guest::VirtualPlatform& platform, Mode mode,
                   obs::TraceSink& sink, obs::SpanProfiler* profiler) const;

  CampaignConfig config_;
};

}  // namespace ii::core
