#include "lint/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ii::lint {

namespace {

[[nodiscard]] bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

[[nodiscard]] bool finding_eq(const Finding& a, const Finding& b) {
  return a.file == b.file && a.line == b.line && a.col == b.col &&
         a.rule == b.rule && a.message == b.message;
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

AnalysisResult analyze(const SourceModel& model, const Policy& policy,
                       const std::vector<std::string>& only_rules) {
  AnalysisResult result;
  result.files_scanned = model.files().size();
  const CheckContext ctx{model, policy};

  std::vector<Finding> raw;
  for (const CheckEntry& check : check_registry()) {
    if (!only_rules.empty() &&
        std::find(only_rules.begin(), only_rules.end(), check.name) ==
            only_rules.end()) {
      continue;
    }
    std::vector<Finding> found = check.run(ctx);
    raw.insert(raw.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }

  // Suppression pass: a finding is dropped when its line carries an
  // ii-analyze:allow for its rule (or for '*').
  std::map<std::string, const LexedFile*, std::less<>> by_path;
  for (const SourceFile& f : model.files()) by_path.emplace(f.path, &f.lex);
  for (Finding& f : raw) {
    bool drop = false;
    const auto file_it = by_path.find(f.file);
    if (file_it != by_path.end()) {
      const auto line_it = file_it->second->allows.find(f.line);
      if (line_it != file_it->second->allows.end()) {
        drop = line_it->second.count(f.rule) != 0 ||
               line_it->second.count("*") != 0;
      }
    }
    if (drop) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(), finding_less);
  result.findings.erase(std::unique(result.findings.begin(),
                                    result.findings.end(), finding_eq),
                        result.findings.end());
  return result;
}

std::string render_text(const AnalysisResult& result) {
  std::ostringstream os;
  for (const Finding& f : result.findings) {
    os << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
       << f.message << '\n';
  }
  if (result.findings.empty()) {
    os << "ii-analyze: OK (" << result.files_scanned << " files, 0 findings";
    if (result.suppressed != 0) {
      os << ", " << result.suppressed << " suppressed";
    }
    os << ")\n";
  } else {
    os << "ii-analyze: FAILED — " << result.findings.size() << " finding"
       << (result.findings.size() == 1 ? "" : "s") << " across "
       << result.files_scanned << " files";
    if (result.suppressed != 0) {
      os << " (" << result.suppressed << " suppressed)";
    }
    os << '\n';
  }
  return os.str();
}

std::string render_json(const AnalysisResult& result) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"ii-analyze\",\n  \"schema\": 1,\n"
     << "  \"files_scanned\": " << result.files_scanned << ",\n"
     << "  \"suppressed\": " << result.suppressed << ",\n"
     << "  \"rules\": [\n";
  const auto& checks = check_registry();
  for (std::size_t i = 0; i < checks.size(); ++i) {
    os << "    {\"id\": \"" << checks[i].name << "\", \"what\": \""
       << json_escape(checks[i].what) << "\"}"
       << (i + 1 < checks.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"message\": \""
       << json_escape(f.message) << "\"}"
       << (i + 1 < result.findings.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace ii::lint
