// C++ lexer for ii-analyze: tokens with file positions, comments stripped,
// suppression comments collected (DESIGN.md §15).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace ii::lint {

/// One lexed translation unit (or header).
struct LexedFile {
  std::vector<Token> tokens;

  /// Suppressions harvested from `// ii-analyze:allow(rule, ...)` comments:
  /// line number -> rule names allowed on that line ("*" allows every
  /// rule). A suppression covers every line its comment touches; a comment
  /// with no code before it on its line also covers the next line that
  /// carries code (blank lines and the rest of a comment block don't break
  /// the chain), so
  ///   // ii-analyze:allow(determinism): wall_us is wall-clock by design,
  ///   // and the deterministic runs use --logical-time instead.
  ///   const auto start = std::chrono::steady_clock::now();
  /// works the way a reader expects. A finding on a multi-line statement
  /// is anchored to the offending token's line — suppress there, inline if
  /// necessary.
  std::map<std::uint32_t, std::set<std::string, std::less<>>> allows;

  /// Total source lines (for bookkeeping / renderers).
  std::uint32_t lines = 0;
};

/// Lex `source`. Handles line/block comments, string and char literals
/// (escapes honoured), raw strings with custom delimiters, and encoding
/// prefixes (u8"", L"", UR"", ...). Never throws on malformed input — an
/// unterminated literal is closed at end of file so analysis of a broken
/// tree still reports something useful.
[[nodiscard]] LexedFile lex(std::string_view source);

}  // namespace ii::lint
