// Source model for ii-analyze: the lexed tree plus the cross-file indexes
// the checks consume (DESIGN.md §15).
//
// Everything here is deterministic by construction: files are ordered by
// repo-relative path, indexes are std::map, and nothing reads a clock —
// the analyzer is itself held to the determinism rule it enforces.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace ii::lint {

struct SourceFile {
  std::string path;  ///< repo-relative, forward slashes ("src/hv/...")
  LexedFile lex;
};

/// One row of a parsed registry table (or enum), with the line it sits on
/// so closure findings can point at the row itself.
struct RegistryRow {
  std::string name;
  std::uint32_t line = 0;
  std::string file;  ///< path of the file the row was parsed from
};

/// The closed vocabularies ii-analyze cross-checks call sites against.
/// Parsed from the registry translation units' token streams — not
/// pattern-matched near them — so a reformatted or multi-line table row
/// still parses. Missing registry files leave the vectors empty and the
/// dependent checks quietly skip (the fixture trees rely on this).
struct Registries {
  std::vector<RegistryRow> chaos_points;  ///< kChaosPointTable rows
  std::vector<RegistryRow> span_rows;     ///< kSpanNameTable row constants
  std::map<std::string, RegistryRow, std::less<>>
      span_constants;                        ///< kSpan* decls -> value row
  std::vector<RegistryRow> trace_categories; ///< enum class TraceCategory
  std::vector<RegistryRow> trace_cases;      ///< case TraceCategory::X:
  long long category_count = -1;  ///< kCategoryCount literal, -1 if absent
  std::uint32_t category_count_line = 0;
  std::vector<RegistryRow> fuzz_targets;     ///< enum class FuzzTarget
  long long fuzz_target_count = -1;  ///< kFuzzTargetCount, -1 if absent
  std::uint32_t fuzz_target_count_line = 0;

  std::string chaos_file;      ///< where the chaos table was parsed from
  std::string span_cpp_file;   ///< where the span render-name table lives
  std::string trace_hpp_file;  ///< where the TraceCategory enum lives
  std::string trace_cpp_file;  ///< where the to_string cases live
  std::string fuzz_hpp_file;   ///< where the FuzzTarget enum lives
};

/// One identifier occurrence.
struct IdentUse {
  std::uint32_t file = 0;  ///< index into SourceModel::files()
  std::uint32_t tok = 0;   ///< index into that file's token stream
  std::uint32_t line = 0;
};

/// A chaos_fire("name") call site.
struct ChaosFireSite {
  std::string point;
  std::uint32_t file = 0;
  std::uint32_t line = 0;
};

class SourceModel {
 public:
  /// Add one file. `path` must be repo-relative. Call finalize() after the
  /// last add; add_file afterwards throws.
  void add_file(std::string path, std::string_view content);

  /// Lex every *.cpp / *.hpp under `root`/src, ordered by relative path.
  /// Returns a finalized model.
  [[nodiscard]] static SourceModel load_tree(const std::string& root);

  /// Sort files, build the registries and the identifier-use index.
  void finalize();

  [[nodiscard]] const std::vector<SourceFile>& files() const {
    return files_;
  }
  [[nodiscard]] const Registries& registries() const { return registries_; }

  /// Every occurrence of `name` across the tree, in (file, token) order.
  [[nodiscard]] const std::vector<IdentUse>* uses(std::string_view name) const;

  /// All identifiers with at least one use whose name starts with `prefix`.
  [[nodiscard]] std::vector<std::string> idents_with_prefix(
      std::string_view prefix) const;

  /// All chaos_fire sites whose argument is a string literal.
  [[nodiscard]] const std::vector<ChaosFireSite>& chaos_fire_sites() const {
    return chaos_sites_;
  }

  /// Names declared in `file` with an unordered container type
  /// (std::unordered_map / set / multimap / multiset). Per-file — the
  /// index is declaration-scoped, not a full type system (DESIGN.md §15).
  [[nodiscard]] const std::set<std::string, std::less<>>&
  unordered_decls(std::uint32_t file) const;

 private:
  void build_registries();
  void build_indexes();

  std::vector<SourceFile> files_;
  Registries registries_;
  std::map<std::string, std::vector<IdentUse>, std::less<>> uses_;
  std::vector<ChaosFireSite> chaos_sites_;
  std::vector<std::set<std::string, std::less<>>> unordered_decls_;
  bool finalized_ = false;
};

/// Index of the matching closer for `open` ("(", "[", "{") at `open_idx`,
/// or the stream size if unbalanced.
[[nodiscard]] std::size_t match_close(const std::vector<Token>& toks,
                                      std::size_t open_idx);

}  // namespace ii::lint
