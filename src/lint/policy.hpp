// Checked-in analysis policy: per-rule path allowlists and scopes
// (DESIGN.md §15). The frame-state ownership story, the pte codec
// boundary, and the determinism perimeter are repo policy, not analyzer
// code — they live in tools/ii_analyze.policy so a reviewer can see (and
// a PR can change) who may touch what without rebuilding the tool.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ii::lint {

class Policy {
 public:
  /// Parse policy text. Grammar (one entry per line, '#' comments):
  ///   [allow <rule>]   — path prefixes exempt from <rule>
  ///   [scope <rule>]   — path prefixes <rule> is confined to; a rule with
  ///                      no scope section applies everywhere
  [[nodiscard]] static Policy parse(std::string_view text);

  /// The defaults this repo ships (mirrors tools/ii_analyze.policy), used
  /// when no policy file is present.
  [[nodiscard]] static Policy builtin();

  /// True if `path` starts with one of `rule`'s allow prefixes.
  [[nodiscard]] bool allowed(std::string_view rule,
                             std::string_view path) const;

  /// True if `rule` has no scope section or `path` starts with one of its
  /// scope prefixes.
  [[nodiscard]] bool in_scope(std::string_view rule,
                              std::string_view path) const;

  void add_allow(std::string rule, std::string prefix);
  void add_scope(std::string rule, std::string prefix);

 private:
  std::map<std::string, std::vector<std::string>, std::less<>> allow_;
  std::map<std::string, std::vector<std::string>, std::less<>> scope_;
};

}  // namespace ii::lint
