// Check registry for ii-analyze (DESIGN.md §15). Each check is a pure
// function over the SourceModel + Policy; adding a rule is one entry in
// check_registry() plus a bad/clean fixture pair under
// tests/lint_fixtures/.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/model.hpp"
#include "lint/policy.hpp"

namespace ii::lint {

struct Finding {
  std::string rule;
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string message;
};

struct CheckContext {
  const SourceModel& model;
  const Policy& policy;
};

struct CheckEntry {
  std::string_view name;
  std::string_view what;
  std::vector<Finding> (*run)(const CheckContext&);
};

/// Every registered check, in stable (documentation) order.
[[nodiscard]] const std::vector<CheckEntry>& check_registry();

}  // namespace ii::lint
