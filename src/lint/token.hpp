// Token model for the ii-analyze lexer (DESIGN.md §15).
//
// The analyzer never sees raw source text: every check walks a token
// stream in which comments are gone and string/char literals are single
// opaque tokens. That is what retires the grep-based ii-lint's entire
// false-positive class — a forbidden pattern inside a comment or a string
// literal simply does not exist at this layer — and what lets checks match
// constructs that span lines.
#pragma once

#include <cstdint>
#include <string>

namespace ii::lint {

enum class TokKind : std::uint8_t {
  Ident,    ///< identifier or keyword
  Number,   ///< integer / floating literal, prefix and suffix included
  Str,      ///< string literal; `text` is the uninterpreted inner text
  CharLit,  ///< character literal; `text` is the inner text
  Punct,    ///< operator / punctuator, maximal-munch (`==` is one token)
};

struct Token {
  TokKind kind{};
  std::string text;
  std::uint32_t line = 0;  ///< 1-based line of the token's first character
  std::uint32_t col = 0;   ///< 1-based column of the token's first character
};

}  // namespace ii::lint
