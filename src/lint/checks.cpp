// The ii-analyze rule set (DESIGN.md §15): the seven rules ported from the
// retired grep-based tools/ii-lint, re-expressed over tokens, plus the
// three checks a regex cannot express — determinism (D1), registry
// closure (R1), and policy-driven frame-state writes (S1).
#include "lint/check.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace ii::lint {

namespace {

[[nodiscard]] bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::Ident && t.text == s;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

[[nodiscard]] bool ident_contains_ci(const Token& t, std::string_view needle) {
  if (t.kind != TokKind::Ident) return false;
  std::string lower = t.text;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower.find(needle) != std::string::npos;
}

/// Numeric value of a number token (handles 0x prefixes and digit
/// separators); 0 if unparseable.
[[nodiscard]] unsigned long long number_value(const Token& t) {
  std::string digits;
  for (const char c : t.text) {
    if (c != '\'') digits += c;
  }
  return std::strtoull(digits.c_str(), nullptr, 0);
}

[[nodiscard]] bool hex_number(const Token& t) {
  return t.kind == TokKind::Number && t.text.size() > 2 &&
         t.text[0] == '0' && (t.text[1] == 'x' || t.text[1] == 'X');
}

void add(std::vector<Finding>& out, std::string_view rule,
         const SourceFile& file, const Token& at, std::string message) {
  out.push_back(
      {std::string{rule}, file.path, at.line, at.col, std::move(message)});
}

// Frame-state members whose writes are confined by policy.
const std::set<std::string, std::less<>> kStateMembers = {"type", "validated"};
const std::set<std::string, std::less<>> kCountMembers = {"type_count",
                                                          "ref_count"};

[[nodiscard]] bool count_write_op(const Token& t) {
  return is_punct(t, "=") || is_punct(t, "+=") || is_punct(t, "-=") ||
         is_punct(t, "++") || is_punct(t, "--");
}

[[nodiscard]] bool any_write_op(const Token& t) {
  return count_write_op(t) || is_punct(t, "*=") || is_punct(t, "/=") ||
         is_punct(t, "%=") || is_punct(t, "&=") || is_punct(t, "|=") ||
         is_punct(t, "^=") || is_punct(t, "<<=") || is_punct(t, ">>=");
}

/// Walk a `++`/`--` operand chain (identifiers, `.`, `->`, index groups)
/// starting after the operator; returns the terminal member name and the
/// separator that reached it ("." / "->"), or empty.
struct ChainEnd {
  std::string member;
  std::string sep;
};
[[nodiscard]] ChainEnd prefix_chain_end(const std::vector<Token>& toks,
                                        std::size_t after_op) {
  ChainEnd end;
  std::string pending_sep;
  std::size_t j = after_op;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (t.kind == TokKind::Ident) {
      if (!pending_sep.empty()) {
        end.member = t.text;
        end.sep = pending_sep;
      }
      ++j;
    } else if (is_punct(t, ".") || is_punct(t, "->")) {
      pending_sep = t.text;
      ++j;
    } else if (is_punct(t, "[")) {
      j = match_close(toks, j) + 1;
    } else {
      break;
    }
  }
  return end;
}

// ---------------------------------------------------- 1. frame-bookkeeping

std::vector<Finding> check_frame_bookkeeping(const CheckContext& ctx) {
  constexpr std::string_view kRule = "frame-bookkeeping";
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    if (ctx.policy.allowed(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_punct(toks[i], ".") && toks[i + 1].kind == TokKind::Ident) {
        const std::string& m = toks[i + 1].text;
        const Token& op = toks[i + 2];
        if (kStateMembers.count(m) != 0 && is_punct(op, "=")) {
          add(out, kRule, file, toks[i + 1],
              "direct write to PageInfo state member '." + m +
                  "' outside the frame-table allowlist (policy "
                  "[allow frame-bookkeeping])");
        } else if (kCountMembers.count(m) != 0 && count_write_op(op)) {
          add(out, kRule, file, toks[i + 1],
              "direct mutation of PageInfo counter '." + m +
                  "' outside the frame-table allowlist (policy "
                  "[allow frame-bookkeeping])");
        }
      }
      if (is_punct(toks[i], "++") || is_punct(toks[i], "--")) {
        const ChainEnd end = prefix_chain_end(toks, i + 1);
        if (end.sep == "." && kCountMembers.count(end.member) != 0) {
          add(out, kRule, file, toks[i],
              "prefix " + toks[i].text + " on PageInfo counter '." +
                  end.member + "' outside the frame-table allowlist");
        }
      }
    }
  }
  return out;
}

// ------------------------------------------------------ 2. trace-category

std::vector<Finding> check_trace_category(const CheckContext& ctx) {
  constexpr std::string_view kRule = "trace-category";
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "emit")) continue;
      if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) {
        continue;
      }
      bool sinkish = ident_contains_ci(toks[i - 2], "sink") ||
                     ident_contains_ci(toks[i - 2], "trace");
      if (!sinkish && i >= 4 && is_punct(toks[i - 2], ")") &&
          is_punct(toks[i - 3], "(")) {
        sinkish = ident_contains_ci(toks[i - 4], "sink") ||
                  ident_contains_ci(toks[i - 4], "trace");
      }
      if (!sinkish || !is_punct(toks[i + 1], "(")) continue;
      const std::size_t close = match_close(toks, i + 1);
      bool named = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (is_ident(toks[j], "TraceCategory")) {
          named = true;
          break;
        }
      }
      if (!named) {
        add(out, kRule, file, toks[i],
            "TraceSink emission without a TraceCategory enumerator in the "
            "call — raw integer categories defeat the registry");
      }
    }
  }
  return out;
}

// --------------------------------------------------- 3. pte-bit-twiddling

std::vector<Finding> check_pte_bits(const CheckContext& ctx) {
  constexpr std::string_view kRule = "pte-bit-twiddling";
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    if (ctx.policy.allowed(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (i + 4 < toks.size() && is_ident(toks[i], "raw") &&
          is_punct(toks[i + 1], "(") && is_punct(toks[i + 2], ")") &&
          (is_punct(toks[i + 3], "&") || is_punct(toks[i + 3], "|")) &&
          hex_number(toks[i + 4])) {
        add(out, kRule, file, toks[i + 3],
            "raw PTE bit arithmetic outside the Pte codec (src/sim/pte.*)");
      }
      if (is_punct(toks[i], "&")) {
        std::size_t j = i + 1;
        if (j < toks.size() && is_punct(toks[j], "~")) ++j;
        if (j < toks.size() && hex_number(toks[j]) &&
            number_value(toks[j]) == 0xFFFULL) {
          add(out, kRule, file, toks[j],
              "page-offset mask 0xFFF outside the Pte codec — use the "
              "codec's accessors");
        }
      }
      // The rule's own reference constant — the one place the mask may be
      // spelled outside the codec.
      constexpr unsigned long long kPteFrameMask =
          0x000FFFFFFFFFF000ULL;  // ii-analyze:allow(pte-bit-twiddling)
      if (hex_number(toks[i]) && number_value(toks[i]) == kPteFrameMask) {
        add(out, kRule, file, toks[i],
            "PTE frame mask literal outside the Pte codec");
      }
    }
  }
  return out;
}

// ------------------------------------------------------ 4. dirty-tracking

std::vector<Finding> check_dirty_tracking(const CheckContext& ctx) {
  constexpr std::string_view kRule = "dirty-tracking";
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    if (ctx.policy.allowed(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if ((is_ident(toks[i], "restore_frame") ||
           is_ident(toks[i], "restore_image")) &&
          is_punct(toks[i + 1], "(")) {
        add(out, kRule, file, toks[i],
            toks[i].text +
                " rolls write generations and belongs to the snapshot "
                "engine alone (policy [allow dirty-tracking])");
      }
      if (is_ident(toks[i], "const_cast")) {
        std::size_t open = i + 1;
        while (open < toks.size() && !is_punct(toks[open], "(")) ++open;
        const std::size_t close = match_close(toks, open);
        for (std::size_t j = open + 1; j < close; ++j) {
          if (is_ident(toks[j], "frame_bytes")) {
            add(out, kRule, file, toks[i],
                "const_cast of the read-only frame_bytes view is an "
                "unmarked mutation — no write generation is bumped");
            break;
          }
        }
      }
    }
  }
  return out;
}

// ------------------------------------------------- 5. rng-seed-truncation

std::vector<Finding> check_rng_seed(const CheckContext& ctx) {
  constexpr std::string_view kRule = "rng-seed-truncation";
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "mt19937")) continue;
      std::size_t j = i + 1;
      bool named = false;
      if (j < toks.size() && toks[j].kind == TokKind::Ident) {
        named = true;
        ++j;
      }
      if (j >= toks.size()) continue;
      // A named declaration with parens is indistinguishable from a
      // function declaration at token level; like the retired lint, only
      // brace-init is checked for named engines.
      const bool opens = is_punct(toks[j], "{") ||
                         (!named && is_punct(toks[j], "("));
      if (!opens) continue;
      const std::size_t close = match_close(toks, j);
      if (close == j + 1) continue;  // value-init, no seed expression
      const bool lone_seq =
          close == j + 2 && toks[j + 1].kind == TokKind::Ident &&
          toks[j + 1].text.size() >= 3 &&
          toks[j + 1].text.compare(toks[j + 1].text.size() - 3, 3, "seq") == 0;
      if (lone_seq) continue;
      add(out, kRule, file, toks[i],
          "std::mt19937 seeded with an expression truncates a 64-bit seed "
          "to 32 bits — construct from a std::seed_seq over both halves");
    }
  }
  return out;
}

// ------------------------------------------------- 6. span-render-name

std::vector<Finding> check_span_render_name(const CheckContext& ctx) {
  constexpr std::string_view kRule = "span-render-name";
  std::vector<Finding> out;
  const Registries& reg = ctx.model.registries();

  if (!reg.span_rows.empty()) {
    std::set<std::string, std::less<>> rows;
    for (const RegistryRow& r : reg.span_rows) rows.insert(r.name);
    for (const std::string& name : ctx.model.idents_with_prefix("kSpan")) {
      if (name == "kSpanNameTable" || rows.count(name) != 0) continue;
      const std::vector<IdentUse>* uses = ctx.model.uses(name);
      const IdentUse& first = uses->front();
      const SourceFile& file = ctx.model.files()[first.file];
      out.push_back({std::string{kRule}, file.path, first.line,
                     file.lex.tokens[first.tok].col,
                     name + " has no SpanNameEntry row in the span "
                            "render-name table — the rendered profile "
                            "cannot describe this phase"});
    }
  }

  if (!reg.trace_categories.empty() && !reg.trace_cases.empty()) {
    std::set<std::string, std::less<>> cases;
    for (const RegistryRow& r : reg.trace_cases) cases.insert(r.name);
    for (const RegistryRow& cat : reg.trace_categories) {
      if (cases.count(cat.name) != 0) continue;
      out.push_back({std::string{kRule}, reg.trace_hpp_file, cat.line, 1,
                     "TraceCategory::" + cat.name +
                         " has no to_string case — traces in this category "
                         "render unreadably"});
    }
  }
  return out;
}

// --------------------------------------------- 7. chaos-point-registry

std::vector<Finding> check_chaos_registry(const CheckContext& ctx) {
  constexpr std::string_view kRule = "chaos-point-registry";
  std::vector<Finding> out;
  const Registries& reg = ctx.model.registries();
  if (reg.chaos_points.empty()) return out;
  std::set<std::string, std::less<>> rows;
  for (const RegistryRow& r : reg.chaos_points) rows.insert(r.name);
  for (const ChaosFireSite& site : ctx.model.chaos_fire_sites()) {
    if (rows.count(site.point) != 0) continue;
    const SourceFile& file = ctx.model.files()[site.file];
    out.push_back({std::string{kRule}, file.path, site.line, 1,
                   "chaos_fire(\"" + site.point +
                       "\") names no row of the chaos-point table — the "
                       "plan parser rejects it, so this point can never "
                       "fire"});
  }
  return out;
}

// ------------------------------------------------------ 8. determinism D1

std::vector<Finding> check_determinism(const CheckContext& ctx) {
  constexpr std::string_view kRule = "determinism";
  std::vector<Finding> out;
  const std::set<std::string, std::less<>> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  for (std::uint32_t fi = 0; fi < ctx.model.files().size(); ++fi) {
    const SourceFile& file = ctx.model.files()[fi];
    if (!ctx.policy.in_scope(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    const auto& unordered = ctx.model.unordered_decls(fi);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::Ident && kClocks.count(t.text) != 0) {
        add(out, kRule, file, t,
            "wall-clock source std::chrono::" + t.text +
                " in a translation unit that feeds deterministic output "
                "(reports/journals/profiles must be byte-identical at any "
                "--threads)");
      }
      if (is_ident(t, "random_device")) {
        add(out, kRule, file, t,
            "std::random_device is nondeterministic entropy in a "
            "deterministic-output translation unit");
      }
      if ((is_ident(t, "rand") || is_ident(t, "srand")) &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
          (i == 0 || (!is_punct(toks[i - 1], ".") &&
                      !is_punct(toks[i - 1], "->")))) {
        add(out, kRule, file, t,
            t.text + "() draws from hidden global state — use the seeded "
                     "engines the fuzz plane provides");
      }
      // Range-for over a container declared unordered in this TU.
      if (is_ident(t, "for") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_close(toks, i + 1);
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close && colon == 0; ++j) {
          if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
              is_punct(toks[j], "{")) {
            ++depth;
          } else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                     is_punct(toks[j], "}")) {
            --depth;
          } else if (depth == 1 && is_punct(toks[j], ":")) {
            colon = j;
          }
        }
        for (std::size_t j = colon; colon != 0 && j < close; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              unordered.count(toks[j].text) != 0) {
            add(out, kRule, file, toks[j],
                "iteration over unordered container '" + toks[j].text +
                    "' — bucket order is implementation-defined, so any "
                    "derived output diverges across runs and platforms");
            break;
          }
        }
      }
      // Explicit iterator walks: x.begin() / x->cbegin() / ...
      if (t.kind == TokKind::Ident && unordered.count(t.text) != 0 &&
          i + 3 < toks.size() &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin") ||
           is_ident(toks[i + 2], "rbegin") ||
           is_ident(toks[i + 2], "crbegin")) &&
          is_punct(toks[i + 3], "(")) {
        add(out, kRule, file, t,
            "iterator walk over unordered container '" + t.text +
                "' — bucket order is implementation-defined");
      }
    }
  }
  return out;
}

// ------------------------------------------------- 9. registry-closure R1

std::vector<Finding> check_registry_closure(const CheckContext& ctx) {
  constexpr std::string_view kRule = "registry-closure";
  std::vector<Finding> out;
  const Registries& reg = ctx.model.registries();

  // Chaos: every registered point must have a live call site, and rows
  // must be unique.
  if (!reg.chaos_points.empty()) {
    std::set<std::string, std::less<>> fired;
    for (const ChaosFireSite& s : ctx.model.chaos_fire_sites()) {
      fired.insert(s.point);
    }
    std::set<std::string, std::less<>> seen;
    for (const RegistryRow& row : reg.chaos_points) {
      if (!seen.insert(row.name).second) {
        out.push_back({std::string{kRule}, reg.chaos_file, row.line, 1,
                       "duplicate chaos-point row '" + row.name + "'"});
      }
      if (fired.count(row.name) == 0) {
        out.push_back({std::string{kRule}, reg.chaos_file, row.line, 1,
                       "chaos point '" + row.name +
                           "' has no chaos_fire call site in src/ — dead "
                           "vocabulary that plans can name but never "
                           "exercise"});
      }
    }
  }

  // Spans: every render-name row must be a declared constant with at least
  // one instrumentation site outside the table itself.
  if (!reg.span_rows.empty()) {
    std::set<std::string, std::less<>> seen;
    for (const RegistryRow& row : reg.span_rows) {
      if (!seen.insert(row.name).second) {
        out.push_back({std::string{kRule}, reg.span_cpp_file, row.line, 1,
                       "duplicate span render-name row for " + row.name});
        continue;
      }
      const auto decl = reg.span_constants.find(row.name);
      if (decl == reg.span_constants.end()) {
        out.push_back({std::string{kRule}, reg.span_cpp_file, row.line, 1,
                       "span render-name row references undeclared "
                       "constant " +
                           row.name});
        continue;
      }
      // Instrumented = referenced somewhere that is neither the table row
      // nor the constant's own declaration.
      bool instrumented = false;
      if (const std::vector<IdentUse>* uses = ctx.model.uses(row.name)) {
        for (const IdentUse& use : *uses) {
          const std::string& path = ctx.model.files()[use.file].path;
          if (path == reg.span_cpp_file) continue;
          if (path == decl->second.file && use.line == decl->second.line) {
            continue;
          }
          instrumented = true;
          break;
        }
      }
      if (!instrumented) {
        out.push_back({std::string{kRule}, reg.span_cpp_file, row.line, 1,
                       "span render-name row for " + row.name +
                           " has no instrumentation site"});
      }
    }
  }

  // Trace categories: to_string cases must be unique, and kCategoryCount
  // must equal the enumerator count (the category mask math depends on
  // it).
  if (!reg.trace_cases.empty()) {
    std::set<std::string, std::less<>> seen;
    for (const RegistryRow& row : reg.trace_cases) {
      if (!seen.insert(row.name).second) {
        out.push_back({std::string{kRule}, reg.trace_cpp_file, row.line, 1,
                       "duplicate to_string case for TraceCategory::" +
                           row.name});
      }
    }
  }
  if (reg.category_count >= 0 && !reg.trace_categories.empty() &&
      reg.category_count !=
          static_cast<long long>(reg.trace_categories.size())) {
    out.push_back({std::string{kRule}, reg.trace_hpp_file,
                   reg.category_count_line, 1,
                   "kCategoryCount (" + std::to_string(reg.category_count) +
                       ") does not match the TraceCategory enumerator "
                       "count (" +
                       std::to_string(reg.trace_categories.size()) +
                       ") — category masks will silently drop events"});
  }

  // Fuzz targets: kFuzzTargetCount bounds the uniform target draw; drift
  // either skips the newest target forever or draws out of range.
  if (reg.fuzz_target_count >= 0 && !reg.fuzz_targets.empty() &&
      reg.fuzz_target_count !=
          static_cast<long long>(reg.fuzz_targets.size())) {
    out.push_back({std::string{kRule}, reg.fuzz_hpp_file,
                   reg.fuzz_target_count_line, 1,
                   "kFuzzTargetCount (" +
                       std::to_string(reg.fuzz_target_count) +
                       ") does not match the FuzzTarget enumerator count (" +
                       std::to_string(reg.fuzz_targets.size()) +
                       ") — uniform target draws will skip or repeat "
                       "targets"});
  }
  return out;
}

// ---------------------------------------------- 10. frame-state-writes S1

std::vector<Finding> check_frame_state_writes(const CheckContext& ctx) {
  constexpr std::string_view kRule = "frame-state-writes";
  const auto member = [](const std::string& m) {
    return kStateMembers.count(m) != 0 || kCountMembers.count(m) != 0;
  };
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    if (ctx.policy.allowed(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      // Arrow-access writes — the surface the regex rules never saw.
      if (is_punct(t, "->") && toks[i + 1].kind == TokKind::Ident &&
          member(toks[i + 1].text) && any_write_op(toks[i + 2])) {
        add(out, kRule, file, toks[i + 1],
            "frame-state member '->" + toks[i + 1].text +
                "' written outside the policy allowlist "
                "([allow frame-state-writes])");
      }
      // Dot-access compound ops beyond the ported rule's operator set.
      if (is_punct(t, ".") && toks[i + 1].kind == TokKind::Ident &&
          member(toks[i + 1].text) && any_write_op(toks[i + 2])) {
        const std::string& m = toks[i + 1].text;
        const bool ported =
            (kStateMembers.count(m) != 0 && is_punct(toks[i + 2], "=")) ||
            (kCountMembers.count(m) != 0 && count_write_op(toks[i + 2]));
        if (!ported) {
          add(out, kRule, file, toks[i + 1],
              "frame-state member '." + m +
                  "' written via compound assignment outside the policy "
                  "allowlist");
        }
      }
      // Prefix ++/-- reaching a member through ->.
      if (is_punct(t, "++") || is_punct(t, "--")) {
        const ChainEnd end = prefix_chain_end(toks, i + 1);
        if (end.sep == "->" && kCountMembers.count(end.member) != 0) {
          add(out, kRule, file, t,
              "prefix " + t.text + " on frame-state member '->" +
                  end.member + "' outside the policy allowlist");
        }
      }
      // std::exchange / std::swap smuggling a write past the state machine.
      if ((is_ident(t, "exchange") || is_ident(t, "swap")) &&
          is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_close(toks, i + 1);
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
          if ((is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
              toks[j + 1].kind == TokKind::Ident &&
              member(toks[j + 1].text)) {
            add(out, kRule, file, t,
                "std::" + t.text + " writes frame-state member '" +
                    toks[j + 1].text + "' without a state-machine "
                                       "transition");
            break;
          }
        }
      }
    }
  }
  return out;
}

// --------------------------------------------- 11. visited-ownership V1

std::vector<Finding> check_visited_ownership(const CheckContext& ctx) {
  // The sharded checker's dedup protocol (DESIGN.md §16) is safe only
  // while every visited-set write goes through ShardedVisited's owner API
  // and the sets are never iterated: a direct insert from a non-owner is a
  // data race, and any walk leaks unordered bucket order into output.
  constexpr std::string_view kRule = "visited-ownership";
  const std::set<std::string, std::less<>> kMutators = {
      "insert", "emplace", "erase", "clear", "extract", "merge"};
  const std::set<std::string, std::less<>> kWalks = {"begin", "cbegin",
                                                     "rbegin", "crbegin"};
  std::vector<Finding> out;
  for (const SourceFile& file : ctx.model.files()) {
    if (!ctx.policy.in_scope(kRule, file.path)) continue;
    if (ctx.policy.allowed(kRule, file.path)) continue;
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (ident_contains_ci(t, "visited") && i + 3 < toks.size() &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          toks[i + 2].kind == TokKind::Ident && is_punct(toks[i + 3], "(")) {
        const std::string& call = toks[i + 2].text;
        if (kMutators.count(call) != 0) {
          add(out, kRule, file, toks[i + 2],
              "direct container mutation '" + t.text + "." + call +
                  "' outside the visited-set owner (ShardedVisited's "
                  "owner_* API in src/analysis/visited.cpp is the only "
                  "sanctioned writer)");
        } else if (kWalks.count(call) != 0) {
          add(out, kRule, file, toks[i + 2],
              "iterator walk over visited set '" + t.text +
                  "' — bucket order is scheduling- and platform-dependent; "
                  "visited sets are probed and sized, never iterated");
        }
      }
      // Range-for whose range expression names a visited set.
      if (is_ident(t, "for") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_close(toks, i + 1);
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close && colon == 0; ++j) {
          if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
              is_punct(toks[j], "{")) {
            ++depth;
          } else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                     is_punct(toks[j], "}")) {
            --depth;
          } else if (depth == 1 && is_punct(toks[j], ":")) {
            colon = j;
          }
        }
        for (std::size_t j = colon; colon != 0 && j < close; ++j) {
          if (ident_contains_ci(toks[j], "visited")) {
            add(out, kRule, file, toks[j],
                "range-for over visited set '" + toks[j].text +
                    "' — visited sets are never iterated (owner-computes "
                    "protocol, DESIGN.md §16)");
            break;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<CheckEntry>& check_registry() {
  static const std::vector<CheckEntry> kChecks = {
      {"frame-bookkeeping",
       "PageInfo type/refcount writes confined to the frame-table core",
       &check_frame_bookkeeping},
      {"trace-category",
       "every TraceSink emission names a TraceCategory enumerator",
       &check_trace_category},
      {"pte-bit-twiddling",
       "PTE encoding knowledge confined to the Pte codec (src/sim/pte.*)",
       &check_pte_bits},
      {"dirty-tracking",
       "frame mutations go through generation-marking snapshot paths",
       &check_dirty_tracking},
      {"rng-seed-truncation",
       "std::mt19937 must be seeded through a std::seed_seq",
       &check_rng_seed},
      {"span-render-name",
       "every span constant and trace category renders by name",
       &check_span_render_name},
      {"chaos-point-registry",
       "every chaos_fire site names a registered chaos point",
       &check_chaos_registry},
      {"determinism",
       "no wall clocks, hidden RNG state, or unordered iteration in "
       "deterministic-output translation units (D1)",
       &check_determinism},
      {"registry-closure",
       "registry tables are duplicate-free, fully declared, and fully "
       "used (R1)",
       &check_registry_closure},
      {"frame-state-writes",
       "policy-driven frame-state write containment incl. arrow access, "
       "compound ops, exchange/swap (S1)",
       &check_frame_state_writes},
      {"visited-ownership",
       "visited-set mutation and iteration confined to ShardedVisited's "
       "owner API (V1)",
       &check_visited_ownership},
  };
  return kChecks;
}

}  // namespace ii::lint
