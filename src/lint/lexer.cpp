#include "lint/lexer.hpp"

#include <array>
#include <cctype>

namespace ii::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators, longest first within each length class.
/// Maximal munch here is what makes the checks sound: `==` must never lex
/// as two `=` tokens, or every equality test would look like a write.
constexpr std::array<std::string_view, 4> kPunct3 = {"<<=", ">>=", "...",
                                                     "->*"};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "##"};
// `<<` / `>>` are intentionally absent: template argument lists close with
// `>` tokens (`map<string, vector<int>>`), and the declaration scanner in
// model.cpp balances single angle tokens. Shift expressions still lex fine
// as two tokens — no check cares about shifts as a unit.

/// Cursor over the source with line/column accounting.
struct Cursor {
  std::string_view src;
  std::size_t pos = 0;
  std::uint32_t line = 1;
  std::uint32_t col = 1;

  [[nodiscard]] bool done() const { return pos >= src.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  void advance() {
    if (done()) return;
    if (src[pos] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos;
  }
  void advance_n(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) advance();
  }
};

/// Is `prefix` a valid string-literal encoding prefix (with or without the
/// raw-string R)?
[[nodiscard]] bool string_prefix(std::string_view prefix, bool& raw) {
  raw = !prefix.empty() && prefix.back() == 'R';
  if (raw) prefix.remove_suffix(1);
  return prefix.empty() || prefix == "u8" || prefix == "u" || prefix == "U" ||
         prefix == "L";
}

struct Suppression {
  std::uint32_t first_line = 0;
  std::uint32_t last_line = 0;
  bool own_line = false;  ///< nothing but whitespace before the comment
  std::set<std::string, std::less<>> rules;
};

/// Scan a comment body for `ii-analyze:allow(rule, rule, ...)` and collect
/// the rule names. Returns false if the marker is absent.
bool parse_allow(std::string_view comment,
                 std::set<std::string, std::less<>>& rules) {
  constexpr std::string_view kMarker = "ii-analyze:allow(";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + kMarker.size();
  std::string name;
  for (; i < comment.size() && comment[i] != ')'; ++i) {
    const char c = comment[i];
    if (c == ',') {
      if (!name.empty()) rules.insert(name);
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name += c;
    }
  }
  if (!name.empty()) rules.insert(name);
  return !rules.empty();
}

}  // namespace

LexedFile lex(std::string_view source) {
  LexedFile out;
  Cursor cur{source};
  std::vector<Suppression> suppressions;
  // Whether anything other than whitespace has appeared on the current
  // line before the cursor — decides if a comment "owns" its line.
  bool line_has_code = false;

  const auto note_comment = [&](std::string_view body, std::uint32_t first,
                                std::uint32_t last, bool own_line) {
    Suppression s;
    if (parse_allow(body, s.rules)) {
      s.first_line = first;
      s.last_line = last;
      s.own_line = own_line;
      suppressions.push_back(std::move(s));
    }
  };

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == '\n') {
      line_has_code = false;
      cur.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.advance();
      continue;
    }

    // ---- comments ------------------------------------------------------
    if (c == '/' && cur.peek(1) == '/') {
      const std::uint32_t first = cur.line;
      const bool own_line = !line_has_code;
      const std::size_t start = cur.pos;
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      note_comment(source.substr(start, cur.pos - start), first, first,
                   own_line);
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      const std::uint32_t first = cur.line;
      const bool own_line = !line_has_code;
      const std::size_t start = cur.pos;
      cur.advance_n(2);
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) {
        cur.advance();
      }
      cur.advance_n(2);  // closing */
      note_comment(source.substr(start, cur.pos - start), first, cur.line,
                   own_line);
      continue;
    }

    line_has_code = true;
    const std::uint32_t tok_line = cur.line;
    const std::uint32_t tok_col = cur.col;

    // ---- identifiers (and string-literal encoding prefixes) ------------
    if (ident_start(c)) {
      const std::size_t start = cur.pos;
      while (!cur.done() && ident_char(cur.peek())) cur.advance();
      const std::string_view word = source.substr(start, cur.pos - start);
      bool raw = false;
      if (cur.peek() == '"' && string_prefix(word, raw)) {
        // u8"...", LR"(...)": the prefix belongs to the literal, not the
        // token stream.
        cur.advance();  // opening quote
        const std::size_t body = cur.pos;
        if (raw) {
          // R"delim( ... )delim"
          std::string delim;
          while (!cur.done() && cur.peek() != '(') {
            delim += cur.peek();
            cur.advance();
          }
          cur.advance();  // '('
          const std::size_t inner = cur.pos;
          const std::string close = ")" + delim + "\"";
          const std::size_t end = source.find(close, cur.pos);
          const std::size_t stop = end == std::string_view::npos
                                       ? source.size()
                                       : end;
          while (cur.pos < stop) cur.advance();
          out.tokens.push_back({TokKind::Str,
                                std::string{source.substr(inner,
                                                          stop - inner)},
                                tok_line, tok_col});
          cur.advance_n(close.size());
        } else {
          while (!cur.done() && cur.peek() != '"' && cur.peek() != '\n') {
            if (cur.peek() == '\\') cur.advance();
            cur.advance();
          }
          out.tokens.push_back({TokKind::Str,
                                std::string{source.substr(body,
                                                          cur.pos - body)},
                                tok_line, tok_col});
          cur.advance();  // closing quote
        }
        continue;
      }
      out.tokens.push_back(
          {TokKind::Ident, std::string{word}, tok_line, tok_col});
      continue;
    }

    // ---- plain string literal ------------------------------------------
    if (c == '"') {
      cur.advance();
      const std::size_t body = cur.pos;
      while (!cur.done() && cur.peek() != '"' && cur.peek() != '\n') {
        if (cur.peek() == '\\') cur.advance();
        cur.advance();
      }
      out.tokens.push_back(
          {TokKind::Str, std::string{source.substr(body, cur.pos - body)},
           tok_line, tok_col});
      cur.advance();
      continue;
    }

    // ---- char literal ---------------------------------------------------
    if (c == '\'') {
      cur.advance();
      const std::size_t body = cur.pos;
      while (!cur.done() && cur.peek() != '\'' && cur.peek() != '\n') {
        if (cur.peek() == '\\') cur.advance();
        cur.advance();
      }
      out.tokens.push_back(
          {TokKind::CharLit,
           std::string{source.substr(body, cur.pos - body)}, tok_line,
           tok_col});
      cur.advance();
      continue;
    }

    // ---- numbers --------------------------------------------------------
    if (digit(c) || (c == '.' && digit(cur.peek(1)))) {
      const std::size_t start = cur.pos;
      while (!cur.done()) {
        const char n = cur.peek();
        if (ident_char(n) || n == '.' || n == '\'') {
          cur.advance();
          continue;
        }
        // Exponent signs: 1e+5, 0x1p-3.
        if ((n == '+' || n == '-') && cur.pos > start) {
          const char prev = source[cur.pos - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            cur.advance();
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(
          {TokKind::Number, std::string{source.substr(start, cur.pos - start)},
           tok_line, tok_col});
      continue;
    }

    // ---- punctuators ----------------------------------------------------
    const std::string_view rest = source.substr(cur.pos);
    std::size_t len = 1;
    for (const std::string_view p : kPunct3) {
      if (rest.substr(0, 3) == p) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const std::string_view p : kPunct2) {
        if (rest.substr(0, 2) == p) {
          len = 2;
          break;
        }
      }
    }
    out.tokens.push_back(
        {TokKind::Punct, std::string{rest.substr(0, len)}, tok_line, tok_col});
    cur.advance_n(len);
  }

  out.lines = cur.line;
  std::set<std::uint32_t> code_lines;
  for (const Token& t : out.tokens) code_lines.insert(t.line);
  for (const Suppression& s : suppressions) {
    for (std::uint32_t l = s.first_line; l <= s.last_line; ++l) {
      out.allows[l].insert(s.rules.begin(), s.rules.end());
    }
    if (s.own_line) {
      // Cover the next line that carries code, so a suppression at the top
      // of a comment block reaches the statement below the block.
      std::uint32_t l = s.last_line + 1;
      while (l <= out.lines && code_lines.count(l) == 0) ++l;
      out.allows[l].insert(s.rules.begin(), s.rules.end());
    }
  }
  return out;
}

}  // namespace ii::lint
