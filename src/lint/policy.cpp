#include "lint/policy.hpp"

#include <sstream>

namespace ii::lint {

namespace {

[[nodiscard]] std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string{s.substr(b, e - b)};
}

[[nodiscard]] bool has_prefix(std::string_view path,
                              const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.size() >= p.size() && path.compare(0, p.size(), p) == 0) {
      return true;
    }
  }
  return false;
}

// Mirrors tools/ii_analyze.policy; keep the two in sync (the
// policy-roundtrip test in lint_analyzer_test compares them).
constexpr std::string_view kBuiltinPolicy = R"(
[allow frame-bookkeeping]
src/hv/frame_table.cpp
src/hv/memory.cpp
src/hv/hypervisor.cpp
src/hv/recovery.cpp
src/hv/grant_table.cpp
src/hv/frame_table.hpp
src/hv/snapshot.hpp

[allow frame-state-writes]
src/hv/frame_table.cpp
src/hv/memory.cpp
src/hv/hypervisor.cpp
src/hv/recovery.cpp
src/hv/grant_table.cpp
src/hv/frame_table.hpp
src/hv/snapshot.hpp

[allow pte-bit-twiddling]
src/sim/pte.

[allow dirty-tracking]
src/sim/phys_mem.
src/hv/snapshot.

[allow visited-ownership]
src/analysis/visited.

[scope visited-ownership]
src/analysis/

[scope determinism]
src/core/report.
src/core/journal.
src/core/campaign.
src/core/supervisor.
src/obs/
src/analysis/
src/lint/
)";

}  // namespace

Policy Policy::parse(std::string_view text) {
  Policy policy;
  std::istringstream in{std::string{text}};
  std::string line;
  std::string section;  // "allow" or "scope"
  std::string rule;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string entry = trim(line);
    if (entry.empty()) continue;
    if (entry.front() == '[' && entry.back() == ']') {
      const std::string header = trim(entry.substr(1, entry.size() - 2));
      const std::size_t space = header.find(' ');
      section = space == std::string::npos ? header : header.substr(0, space);
      rule = space == std::string::npos ? std::string{}
                                        : trim(header.substr(space + 1));
      continue;
    }
    if (rule.empty()) continue;
    if (section == "allow") {
      policy.add_allow(rule, entry);
    } else if (section == "scope") {
      policy.add_scope(rule, entry);
    }
  }
  return policy;
}

Policy Policy::builtin() { return parse(kBuiltinPolicy); }

bool Policy::allowed(std::string_view rule, std::string_view path) const {
  const auto it = allow_.find(rule);
  return it != allow_.end() && has_prefix(path, it->second);
}

bool Policy::in_scope(std::string_view rule, std::string_view path) const {
  const auto it = scope_.find(rule);
  return it == scope_.end() || has_prefix(path, it->second);
}

void Policy::add_allow(std::string rule, std::string prefix) {
  allow_[std::move(rule)].push_back(std::move(prefix));
}

void Policy::add_scope(std::string rule, std::string prefix) {
  scope_[std::move(rule)].push_back(std::move(prefix));
}

}  // namespace ii::lint
