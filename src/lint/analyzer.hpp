// ii-analyze driver: run the check registry over a SourceModel, apply
// suppressions, and render findings as human text or machine-readable
// JSON (DESIGN.md §15). Both renders are deterministic: findings are
// sorted, nothing reads a clock, and repeated runs over the same tree are
// byte-identical (CI cmp-gates this).
#pragma once

#include <string>
#include <vector>

#include "lint/check.hpp"

namespace ii::lint {

struct AnalysisResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, col, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings dropped by ii-analyze:allow
};

/// Run checks over the model. `only_rules` restricts to the named rules
/// (empty = all). Findings on lines carrying a matching
/// `// ii-analyze:allow(rule)` comment are counted in `suppressed` and
/// dropped.
[[nodiscard]] AnalysisResult analyze(
    const SourceModel& model, const Policy& policy,
    const std::vector<std::string>& only_rules = {});

[[nodiscard]] std::string render_text(const AnalysisResult& result);

/// SARIF-lite JSON: tool header, rule table, findings array. Stable field
/// order and sorted findings make two runs byte-comparable.
[[nodiscard]] std::string render_json(const AnalysisResult& result);

}  // namespace ii::lint
