#include "lint/model.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ii::lint {

namespace {

[[nodiscard]] bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::Ident && t.text == s;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Locate the first file whose path ends with `suffix`.
[[nodiscard]] const SourceFile* find_file(const std::vector<SourceFile>& files,
                                          std::string_view suffix) {
  for (const SourceFile& f : files) {
    if (f.path.size() >= suffix.size() &&
        f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return &f;
    }
  }
  return nullptr;
}

}  // namespace

std::size_t match_close(const std::vector<Token>& toks,
                        std::size_t open_idx) {
  if (open_idx >= toks.size()) return toks.size();
  const std::string& open = toks[open_idx].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "[") {
    close = "]";
  } else if (open == "{") {
    close = "}";
  } else {
    return toks.size();
  }
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    if (is_punct(toks[i], close)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

void SourceModel::add_file(std::string path, std::string_view content) {
  if (finalized_) {
    throw std::logic_error{"SourceModel::add_file after finalize"};
  }
  SourceFile f;
  f.path = std::move(path);
  f.lex = lex(content);
  files_.push_back(std::move(f));
}

SourceModel SourceModel::load_tree(const std::string& root) {
  namespace fs = std::filesystem;
  SourceModel model;
  const fs::path base{root};
  const fs::path src = base / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator{src}) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream in{entry.path(), std::ios::binary};
      std::ostringstream buf;
      buf << in.rdbuf();
      model.add_file(fs::relative(entry.path(), base).generic_string(),
                     buf.str());
    }
  }
  model.finalize();
  return model;
}

void SourceModel::finalize() {
  if (finalized_) return;
  std::sort(files_.begin(), files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  finalized_ = true;
  build_registries();
  build_indexes();
}

const std::vector<IdentUse>* SourceModel::uses(std::string_view name) const {
  const auto it = uses_.find(name);
  return it == uses_.end() ? nullptr : &it->second;
}

std::vector<std::string> SourceModel::idents_with_prefix(
    std::string_view prefix) const {
  std::vector<std::string> names;
  for (auto it = uses_.lower_bound(prefix); it != uses_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    names.push_back(it->first);
  }
  return names;
}

const std::set<std::string, std::less<>>& SourceModel::unordered_decls(
    std::uint32_t file) const {
  static const std::set<std::string, std::less<>> kEmpty;
  return file < unordered_decls_.size() ? unordered_decls_[file] : kEmpty;
}

// ------------------------------------------------------ registry parsing

void SourceModel::build_registries() {
  // Chaos-point table: kChaosPointTable rows are `{ "name", "desc" }`; the
  // first string literal after each row-opening brace is the point name.
  if (const SourceFile* f = find_file(files_, "core/chaos.cpp")) {
    registries_.chaos_file = f->path;
    const auto& toks = f->lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "kChaosPointTable")) continue;
      std::size_t open = i + 1;
      while (open < toks.size() && !is_punct(toks[open], "{")) ++open;
      const std::size_t close = match_close(toks, open);
      for (std::size_t j = open + 1; j < close; ++j) {
        if (!is_punct(toks[j], "{")) continue;
        const std::size_t row_close = match_close(toks, j);
        if (j + 1 < row_close && toks[j + 1].kind == TokKind::Str) {
          registries_.chaos_points.push_back(
              {toks[j + 1].text, toks[j + 1].line, f->path});
        }
        j = row_close;
      }
      break;
    }
  }

  // Span render-name table: rows are `SpanNameEntry{kSpanX, "what"}`.
  if (const SourceFile* f = find_file(files_, "obs/span.cpp")) {
    registries_.span_cpp_file = f->path;
    const auto& toks = f->lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "kSpanNameTable")) continue;
      std::size_t open = i + 1;
      while (open < toks.size() && !is_punct(toks[open], "{")) ++open;
      const std::size_t close = match_close(toks, open);
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (is_ident(toks[j], "SpanNameEntry") && is_punct(toks[j + 1], "{") &&
            toks[j + 2].kind == TokKind::Ident) {
          registries_.span_rows.push_back(
              {toks[j + 2].text, toks[j + 2].line, f->path});
          j = match_close(toks, j + 1);
        }
      }
      break;
    }
  }

  // Span constants: `kSpanX = "name"` declarations, wherever they live.
  for (const SourceFile& f : files_) {
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::Ident &&
          toks[i].text.compare(0, 5, "kSpan") == 0 &&
          is_punct(toks[i + 1], "=") && toks[i + 2].kind == TokKind::Str) {
        registries_.span_constants.emplace(
            toks[i].text,
            RegistryRow{toks[i + 2].text, toks[i].line, f.path});
      }
    }
  }

  if (const SourceFile* f = find_file(files_, "obs/trace.hpp")) {
    registries_.trace_hpp_file = f->path;
    const auto& toks = f->lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      // enum class TraceCategory [: base] { A, B = 1, ... };
      if (is_ident(toks[i], "enum") && is_ident(toks[i + 1], "class") &&
          is_ident(toks[i + 2], "TraceCategory")) {
        std::size_t open = i + 3;
        while (open < toks.size() && !is_punct(toks[open], "{")) ++open;
        const std::size_t close = match_close(toks, open);
        for (std::size_t j = open + 1; j < close; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              (is_punct(toks[j - 1], "{") || is_punct(toks[j - 1], ","))) {
            registries_.trace_categories.push_back(
                {toks[j].text, toks[j].line, f->path});
          }
        }
      }
      // inline constexpr std::size_t kCategoryCount = 14;
      if (is_ident(toks[i], "kCategoryCount") && is_punct(toks[i + 1], "=") &&
          toks[i + 2].kind == TokKind::Number) {
        registries_.category_count =
            std::strtoll(toks[i + 2].text.c_str(), nullptr, 0);
        registries_.category_count_line = toks[i].line;
      }
    }
  }

  // Fuzz targets: the uniform draw in the blind fuzzer divides by
  // kFuzzTargetCount, so the constant must track the enumerator count.
  if (const SourceFile* f = find_file(files_, "core/fuzz.hpp")) {
    registries_.fuzz_hpp_file = f->path;
    const auto& toks = f->lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      // enum class FuzzTarget [: base] { A, B, ... };
      if (is_ident(toks[i], "enum") && is_ident(toks[i + 1], "class") &&
          is_ident(toks[i + 2], "FuzzTarget")) {
        std::size_t open = i + 3;
        while (open < toks.size() && !is_punct(toks[open], "{")) ++open;
        const std::size_t close = match_close(toks, open);
        for (std::size_t j = open + 1; j < close; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              (is_punct(toks[j - 1], "{") || is_punct(toks[j - 1], ","))) {
            registries_.fuzz_targets.push_back(
                {toks[j].text, toks[j].line, f->path});
          }
        }
      }
      // inline constexpr std::size_t kFuzzTargetCount = 5;
      if (is_ident(toks[i], "kFuzzTargetCount") &&
          is_punct(toks[i + 1], "=") && toks[i + 2].kind == TokKind::Number) {
        registries_.fuzz_target_count =
            std::strtoll(toks[i + 2].text.c_str(), nullptr, 0);
        registries_.fuzz_target_count_line = toks[i].line;
      }
    }
  }

  if (const SourceFile* f = find_file(files_, "obs/trace.cpp")) {
    registries_.trace_cpp_file = f->path;
    const auto& toks = f->lex.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (is_ident(toks[i], "case") && is_ident(toks[i + 1], "TraceCategory") &&
          is_punct(toks[i + 2], "::") &&
          toks[i + 3].kind == TokKind::Ident) {
        registries_.trace_cases.push_back(
            {toks[i + 3].text, toks[i + 3].line, f->path});
      }
    }
  }
}

// -------------------------------------------------------------- indexes

void SourceModel::build_indexes() {
  unordered_decls_.assign(files_.size(), {});
  for (std::uint32_t fi = 0; fi < files_.size(); ++fi) {
    const auto& toks = files_[fi].lex.tokens;
    for (std::uint32_t ti = 0; ti < toks.size(); ++ti) {
      const Token& t = toks[ti];
      if (t.kind != TokKind::Ident) continue;
      uses_[t.text].push_back({fi, ti, t.line});

      // chaos_fire("point") call sites (string-literal argument only; a
      // non-literal argument is the chaos_fire declaration itself or a
      // forwarding wrapper, which the registry check has no opinion on).
      if (t.text == "chaos_fire" && ti + 2 < toks.size() &&
          is_punct(toks[ti + 1], "(") &&
          toks[ti + 2].kind == TokKind::Str) {
        chaos_sites_.push_back({toks[ti + 2].text, fi, toks[ti + 2].line});
      }

      // Declarations with an unordered container type. The lexer never
      // munches `>>`, so template argument lists balance on single angle
      // tokens.
      if (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset") {
        std::size_t j = ti + 1;
        if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (is_punct(toks[j], "<")) ++depth;
          if (is_punct(toks[j], ">")) {
            --depth;
            if (depth == 0) break;
          }
        }
        ++j;  // past the closing '>'
        while (j < toks.size() &&
               (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                is_ident(toks[j], "const"))) {
          ++j;
        }
        if (j + 1 < toks.size() && toks[j].kind == TokKind::Ident) {
          const Token& next = toks[j + 1];
          if (is_punct(next, ";") || is_punct(next, "=") ||
              is_punct(next, "{") || is_punct(next, "(") ||
              is_punct(next, ",") || is_punct(next, ")")) {
            unordered_decls_[fi].insert(toks[j].text);
          }
        }
      }
    }
  }
}

}  // namespace ii::lint
