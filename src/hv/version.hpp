// Version policy: which checks each simulated Xen release performs.
//
// The paper's whole experimental design rests on running the *same*
// erroneous-state injections against Xen 4.6 (vulnerable), 4.8 (fixed) and
// 4.13 (fixed + hardened after the XSA-213..215 follow-ups, which removed a
// guest-reachable 512 GiB RWX linear-pagetable alias). This struct is the
// single point where those differences live; every validation site in the
// hypervisor consults it, so a version is exactly "a set of checks".
#pragma once

#include <compare>
#include <string>

namespace ii::hv {

/// A Xen release identifier (major.minor).
struct XenVersion {
  int major = 4;
  int minor = 6;

  friend constexpr auto operator<=>(const XenVersion&, const XenVersion&) =
      default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(major) + "." + std::to_string(minor);
  }
};

inline constexpr XenVersion kXen46{4, 6};
inline constexpr XenVersion kXen48{4, 8};
inline constexpr XenVersion kXen413{4, 13};

/// The behavioural knobs that distinguish the simulated releases.
struct VersionPolicy {
  XenVersion version{};

  /// XSA-212: `memory_exchange` fails to range-check the guest-supplied
  /// output pointer before copying results back, yielding an arbitrary
  /// hypervisor-space write primitive. Fixed in 4.8.2 / 4.9.
  bool xsa212_unchecked_exchange_output = false;

  /// XSA-148: L2 page-table-entry validation misses the PSE (superpage)
  /// bit, letting a PV guest map a 2 MiB machine-contiguous region —
  /// including its own page-table frames — writable. Fixed after 4.6.
  bool xsa148_l2_pse_unvalidated = false;

  /// XSA-182: the `mod_l4_entry` fast path skips re-validation when an
  /// update only changes flag bits of an existing entry, so a read-only
  /// L4 "linear" self-map can be flipped to writable. Fixed after 4.6.
  bool xsa182_l4_fastpath_unvalidated = false;

  /// Pre-4.9 layout: machine memory is aliased RWX at a guest-reachable
  /// range (0xffff8040'00000000). Its removal is the hardening that makes
  /// Xen 4.13 *handle* two of the paper's four injected states (Table III).
  bool guest_linear_alias_present = false;

  /// Post-XSA-213-era strictness: guest accesses whose L4 slot lies in the
  /// Xen-reserved range are cross-checked against the hypervisor-installed
  /// entry before use; a corrupted reserved slot faults instead of being
  /// followed. Models the 4.9+ reserved-area hardening.
  bool strict_reserved_slot_check = false;

  /// Extension (paper §IV-B): grant-table v2→v1 downgrade leaks status
  /// frames, leaving the guest with access to pages returned to Xen
  /// (XSA-387 family, "Keep Page Access"). Modelled as fixed in 4.13.
  bool grant_v2_status_leak = false;

  /// Extension (paper §IX-C, Table I's non-memory class): the event-channel
  /// delivery loop re-queues events raised on ports with no registered
  /// handler, so an injected pending-bit storm livelocks the CPU ("Induce a
  /// Hang State"). Hardened (dropping) behaviour modelled from 4.13.
  bool evtchn_requeue_unbound = false;

  /// Extension (management-interface IMs, §IX-C): whether frames of a
  /// destroyed domain are scrubbed before returning to the heap. Without
  /// it, recycled frames leak the dead tenant's data ("Read Unauthorized
  /// Memory"). Modelled as eager from 4.13.
  bool scrub_on_destroy = false;

  /// The paper's §III-A motivating example, XSA-133/VENOM (CVE-2015-3456):
  /// the device model's floppy controller accepts FIFO bytes without a
  /// bounds check, overflowing into adjacent device-model state. Modelled
  /// as present in the 4.6-era platform only.
  bool fdc_unbounded_fifo = false;

  /// Hardened device model: verify the command-dispatch table's integrity
  /// before every dispatch and abort the device model on mismatch (a CFI-
  /// style mitigation). Turns a corrupted handler into a contained DM
  /// crash instead of code execution. Modelled from 4.13.
  bool dm_handler_integrity_check = false;

  /// Build the policy for a release. Unknown versions get the most
  /// hardened behaviour.
  [[nodiscard]] static VersionPolicy for_version(XenVersion v);
};

}  // namespace ii::hv
