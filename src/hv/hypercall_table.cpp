#include "hv/hypercall_table.hpp"

#include "hv/hypervisor.hpp"

namespace ii::hv {

unsigned arbitrary_access_nr(XenVersion version) {
  // Vacant slots differ between the three patched trees.
  if (version <= kXen46) return 41;
  if (version < kXen413) return 42;
  return 44;
}

namespace {

/// Fetch the payload as T, or nullptr on a number/payload mismatch.
template <typename T>
T* expect(HypercallPayload& payload) {
  return std::get_if<T>(&payload);
}

long dispatch_impl(Hypervisor& hv, DomainId caller, unsigned nr,
                   HypercallPayload& payload) {
  switch (nr) {
    case kHcSetTrapTable: {
      auto* call = expect<SetTrapTableCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_set_trap_table(caller, call->traps);
    }
    case kHcMmuUpdate: {
      auto* call = expect<MmuUpdateCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_mmu_update(caller, call->requests, call->done);
    }
    case kHcUpdateVaMapping: {
      auto* call = expect<UpdateVaMappingCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_update_va_mapping(caller, call->va, call->val);
    }
    case kHcMemoryOp: {
      auto* call = expect<MemoryOpCall>(payload);
      if (call == nullptr) return kENOSYS;
      switch (call->cmd) {
        case MemoryOpCmd::Exchange:
          if (call->exchange == nullptr) return kEINVAL;
          return hv.hypercall_memory_exchange(caller, *call->exchange);
        case MemoryOpCmd::DecreaseReservation:
          return hv.hypercall_decrease_reservation(caller, call->pfn);
        case MemoryOpCmd::PopulatePhysmap:
          return hv.hypercall_populate_physmap(caller, call->pfn);
      }
      return kEINVAL;
    }
    case kHcConsoleIo: {
      auto* call = expect<ConsoleIoCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_console_io(caller, call->line);
    }
    case kHcGrantTableOp: {
      auto* call = expect<GrantTableOpCall>(payload);
      if (call == nullptr) return kENOSYS;
      const long rc = [&]() -> long {
        switch (call->op) {
          case GrantTableOpCall::Op::SetVersion:
            return hv.grants().set_version(caller, call->version);
          case GrantTableOpCall::Op::GrantAccess:
            return hv.grants().grant_access(caller, call->ref, call->peer,
                                            call->pfn, call->readonly);
          case GrantTableOpCall::Op::EndAccess:
            return hv.grants().end_access(caller, call->ref);
          case GrantTableOpCall::Op::Map:
            return hv.grants().map_grant(caller, call->peer, call->ref,
                                         call->out_handle, call->out_frame);
          case GrantTableOpCall::Op::Unmap:
            return hv.grants().unmap_grant(caller, call->handle);
        }
        return kEINVAL;
      }();
      if (obs::TraceSink* sink = hv.trace_sink()) {
        sink->emit(obs::TraceCategory::GrantOp, caller,
                   static_cast<std::uint32_t>(call->op), rc, call->ref);
      }
      return rc;
    }
    case kHcMmuExtOp: {
      auto* call = expect<MmuExtOp>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_mmuext_op(caller, *call);
    }
    case kHcSchedOp: {
      auto* call = expect<SchedOpCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_sched_op_shutdown(caller, call->reason);
    }
    case kHcEventChannelOp: {
      auto* call = expect<EventChannelOpCall>(payload);
      if (call == nullptr) return kENOSYS;
      const long rc = [&]() -> long {
        switch (call->op) {
          case EventChannelOpCall::Op::AllocUnbound:
            return hv.events().alloc_unbound(caller, call->remote,
                                             call->out_port);
          case EventChannelOpCall::Op::BindInterdomain:
            return hv.events().bind_interdomain(caller, call->remote,
                                                call->port, call->out_port);
          case EventChannelOpCall::Op::Send:
            return hv.events().send(caller, call->port);
        }
        return kEINVAL;
      }();
      if (obs::TraceSink* sink = hv.trace_sink()) {
        sink->emit(obs::TraceCategory::EventChannel, caller,
                   static_cast<std::uint32_t>(call->op), rc, call->port);
      }
      return rc;
    }
    case kHcDomctl: {
      auto* call = expect<DomctlCall>(payload);
      if (call == nullptr) return kENOSYS;
      return hv.hypercall_domctl_destroy(caller, call->victim);
    }
    default: {
      if (nr == arbitrary_access_nr(hv.version())) {
        auto* call = expect<ArbitraryAccessCall>(payload);
        if (call == nullptr) return kENOSYS;
        return hv.hypercall_arbitrary_access(caller, call->request);
      }
      return kENOSYS;  // vacant slot
    }
  }
}

}  // namespace

long dispatch_hypercall(Hypervisor& hv, DomainId caller, unsigned nr,
                        HypercallPayload& payload) {
  obs::TraceSink* sink = hv.trace_sink();
  if (sink != nullptr) {
    sink->emit(obs::TraceCategory::HypercallEnter, caller, nr);
  }
  const long rc = dispatch_impl(hv, caller, nr, payload);
  if (sink != nullptr) {
    sink->emit(obs::TraceCategory::HypercallExit, caller, nr, rc);
  }
  return rc;
}

}  // namespace ii::hv
