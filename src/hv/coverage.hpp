// Validation-engine branch coverage (the fuzzer's feedback signal).
//
// The validation engine (memory.cpp, grant_table.cpp) makes a small, closed
// set of accept/reject decisions, several of them gated on VersionPolicy
// knobs — the XSA-148 PSE acceptance, the XSA-182 linear-slot fast path, the
// XSA-212 unchecked copy, the XSA-387 downgrade leak. ValidationBranch
// enumerates every such decision point; a CoverageHook attached to the
// Hypervisor observes (branch, frame type) pairs as hypercalls execute.
// Combined with the issuing operation's kind, that triple — op type × frame
// type × version-policy branch taken — is the coverage key the
// coverage-guided fuzzer (core/fuzz.hpp) feeds on.
//
// Cost model, same as TraceSink/SpanProfiler: the hypervisor never owns the
// hook, and with none attached every instrumentation site is one
// predicted-not-taken branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "hv/frame_table.hpp"

namespace ii::hv {

/// One accept/reject decision point in the validation engine. Entries are
/// grouped by the function that fires them; the Xsa*-named branches exist
/// only under the vulnerable policies, so covering them is direct evidence
/// the fuzzer reached a version-dependent path.
enum class ValidationBranch : std::uint8_t {
  // validate_entry_target()
  EntryNonPresent,      ///< non-present entry accepted as-is
  EntryReservedBits,    ///< reserved bits set -> EINVAL
  EntryBadFrame,        ///< target frame outside the machine -> EINVAL
  Xsa148PseAccepted,    ///< vulnerable L2 PSE entry accepted unvalidated
  PseRejected,          ///< hardened superpage rejection
  EntryForeignFrame,    ///< target owned by another domain -> EPERM
  L1Writable,           ///< writable leaf: target must take Writable type
  L1ReadOnlyRef,        ///< read-only leaf: plain existence reference
  IntermediateLink,     ///< intermediate entry: child table must validate
  // get_page_type()
  TypeWritableOk,       ///< Writable type granted (fresh or re-referenced)
  TypeWritableBusy,     ///< typed page may not become guest-writable
  TypeTableRef,         ///< already-validated table re-referenced
  TypeTableBusy,        ///< conflicting type -> EBUSY
  TypeTableValidated,   ///< fresh table validation succeeded
  TypeTableRejected,    ///< fresh table validation failed
  // validate_and_write_entry(), Xen-reserved L4 window
  ReservedSlotStrict,   ///< strict_reserved_slot_check refusal
  ReservedSlotNonLinear,///< reserved slot other than the linear slot
  LinearSlotCleared,    ///< linear slot cleared (non-present write)
  LinearRoSelfMap,      ///< read-only linear self map accepted
  Xsa182FastpathTaken,  ///< writable linear map via the unvalidated fast path
  LinearRwRefused,      ///< writable linear map refused (the fix)
  // copy_to_guest() / hypercall_memory_exchange()
  ExchangeOutputChecked,   ///< XSA-212 fix: access_ok'd user-rights copy
  ExchangeOutputUnchecked, ///< XSA-212: supervisor-rights unchecked copy
  ExchangeBusy,            ///< in-extent still typed/mapped -> EBUSY
  // hypercall_mmuext_op()
  PinOk,
  PinRefused,
  UnpinOk,
  UnpinRefused,
  BaseptrOk,
  BaseptrRefused,
  // GrantOps::set_version()
  GrantStatusMapped,    ///< v2 upgrade exposed the Xen-owned status frame
  GrantDowngradeLeak,   ///< XSA-387: downgrade kept the status mapping
  GrantDowngradeClean,  ///< hardened downgrade released the status frame
  // hypercall_arbitrary_access()
  InjectorServed,
  InjectorRefused,
};

inline constexpr std::size_t kValidationBranchCount = 35;

/// Number of PageType values a coverage key distinguishes (None..XenHeap).
inline constexpr std::size_t kCoverageFrameTypes = 9;

[[nodiscard]] std::string to_string(ValidationBranch b);

/// Observer interface the fuzzer implements. `frame_type` is the type of
/// the frame the decision was about at the time of the decision (None when
/// the branch is not about a specific frame).
class CoverageHook {
 public:
  virtual ~CoverageHook() = default;
  virtual void on_branch(ValidationBranch branch, PageType frame_type) = 0;
};

}  // namespace ii::hv
