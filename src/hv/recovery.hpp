// ReHype-style hypervisor recovery and the invariant auditor behind it.
//
// ReHype (Le & Tamir) showed that a failed hypervisor can be *recovered in
// place* — micro-rebooting the hypervisor component while preserving the
// state of running VMs — instead of rebuilding the whole machine. This
// module brings that idea to the simulator: `Hypervisor::recover()`
// reconstructs every piece of hypervisor bookkeeping an intrusion can
// corrupt (IDT, shared Xen tables, frame types/refcounts, P2M, grant
// references) from the surviving ground truth, and the InvariantAuditor
// measures which safety invariants were violated before and restored after
// — turning "does recovery survive an injected erroneous state?" into a
// campaign-measurable experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {

/// The safety invariants recovery promises to restore. The first six are
/// the structural audits of hv/audit.hpp grouped by the property they
/// protect; the last three are bookkeeping-consistency checks only the
/// recovery path needs (a live system maintains them by construction).
enum class Invariant : std::uint8_t {
  Liveness,              ///< not panicked, no wedged CPU
  FrameTypeSafety,       ///< no guest-writable page-table or Xen frame
  AddressSpaceIsolation, ///< no guest mapping of another domain's frame
  IdtIntegrity,          ///< every IDT gate matches its boot-time handler
  XenL3Hygiene,          ///< no foreign entry in the shared Xen L3
  ReservedSlotIntegrity, ///< guest L4 reserved slots match Xen's
  GrantLifecycle,        ///< no stale grant-status mapping
  P2mConsistency,        ///< every P2M entry maps a frame the domain owns
  RefcountConsistency,   ///< frame type/refcount state is self-consistent
};

inline constexpr std::size_t kInvariantCount = 9;

[[nodiscard]] std::string to_string(Invariant invariant);

struct InvariantFinding {
  Invariant invariant{};
  DomainId domain = kDomInvalid;  ///< domain implicated, if any
  std::string detail;
};

/// One full audit pass: which invariants hold, with per-finding detail.
struct InvariantReport {
  std::vector<InvariantFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] bool violated(Invariant invariant) const {
    for (const auto& f : findings)
      if (f.invariant == invariant) return true;
    return false;
  }
  /// Violated invariants, deduplicated, in enum order.
  [[nodiscard]] std::vector<Invariant> violated_set() const;
};

/// Audits the full invariant list against a live hypervisor. Each finding
/// is also emitted on the hypervisor's trace sink as an InvariantViolation
/// event (code = Invariant, domain = implicated domain), so campaigns see
/// violations in the per-cell stream.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const Hypervisor& hv) : hv_{&hv} {}

  /// Walks the page tables once (hv/audit.hpp walk_system) and runs every
  /// invariant check over the shared walk.
  [[nodiscard]] InvariantReport audit() const;

  /// Same checks over a walk the caller already materialized — what the
  /// model checker uses so audit and erroneous-state classification see
  /// the identical traversal.
  [[nodiscard]] InvariantReport audit(const SystemWalk& walk) const;

 private:
  const Hypervisor* hv_;
};

/// What one recovery pass observed and repaired.
struct RecoveryReport {
  InvariantReport pre;   ///< audit taken on entry (the corrupted state)
  InvariantReport post;  ///< audit taken after reconstruction

  std::uint64_t idt_gates_restored = 0;   ///< gates differing from boot state
  std::uint64_t xen_l3_entries_cleared = 0;
  std::uint64_t frames_retyped = 0;       ///< guest frames with rebuilt info
  std::uint64_t p2m_entries_dropped = 0;  ///< P2M slots failing reconciliation
  std::uint64_t ptes_scrubbed = 0;        ///< guest PTEs the sanitizer cleared
  std::vector<DomainId> unrecovered_domains;  ///< revalidation failed; crashed

  /// Recovery succeeded iff the post-recovery audit is clean.
  [[nodiscard]] bool succeeded() const { return post.clean(); }
  /// Invariants violated on entry and clean on exit.
  [[nodiscard]] std::vector<Invariant> restored() const;
};

}  // namespace ii::hv
