#include "hv/hypervisor.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ii::hv {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

constexpr std::uint64_t kGuestSlotFlags =
    sim::Pte::kPresent | sim::Pte::kWritable | sim::Pte::kUser;

}  // namespace

Hypervisor::Hypervisor(sim::PhysicalMemory& mem, VersionPolicy policy,
                       HvConfig config)
    : mem_{&mem},
      policy_{policy},
      config_{config},
      mmu_{mem},
      frames_{mem.frame_count()},
      default_handlers_(sim::kIdtVectors, 0) {
  if (config_.xen_frames < 4 ||
      config_.xen_frames * sim::kPageSize > mem.byte_size() / 2) {
    throw std::invalid_argument{"HvConfig::xen_frames out of range"};
  }
  // Reserve the hypervisor image frames (frame 0 = XenInfoPage, frame 1 =
  // IDT, the rest model text/data).
  auto reserved = frames_.alloc_contiguous(kDomXen, config_.xen_frames);
  if (!reserved || reserved->raw() != 0) {
    throw std::logic_error{"hypervisor image must start at frame 0"};
  }
  for (std::uint64_t i = 0; i < config_.xen_frames; ++i) {
    frames_.info(sim::Mfn{i}).type = PageType::XenHeap;
  }
  xen_text_bytes_ = config_.xen_frames * sim::kPageSize;
  idt_base_ = sim::mfn_to_paddr(sim::Mfn{1});

  build_xen_address_space();
  install_default_idt();

  // Publish the layout-knowledge block guests could derive from the binary.
  XenInfoPage info{};
  info.version_major = static_cast<std::uint32_t>(policy_.version.major);
  info.version_minor = static_cast<std::uint32_t>(policy_.version.minor);
  info.xen_l3_paddr = sim::mfn_to_paddr(xen_l3_).raw();
  info.idt_paddr = idt_base_.raw();
  mem_->write(sim::Paddr{0},
              {reinterpret_cast<const std::uint8_t*>(&info), sizeof info});

  log("(XEN) Xen version " + policy_.version.to_string() + " (simulated)");
  log("(XEN) " + std::to_string(mem_->frame_count()) + " machine frames, " +
      std::to_string(config_.xen_frames) + " reserved for Xen");
  if (config_.injector_enabled) {
    log("(XEN) intrusion-injection hypercall ENABLED (patched build)");
  }
}

sim::Mfn Hypervisor::alloc_xen_table() {
  auto mfn = frames_.alloc(kDomXen);
  if (!mfn) throw std::runtime_error{"out of memory for Xen page tables"};
  frames_.info(*mfn).type = PageType::XenHeap;
  mem_->zero_frame(*mfn);
  return *mfn;
}

void Hypervisor::build_xen_address_space() {
  xen_l4_ = alloc_xen_table();
  xen_l3_ = alloc_xen_table();
  directmap_l3_ = alloc_xen_table();

  // --- Xen text/data, guest-readable, at kXenTextBase (L3 slot 0). --------
  const sim::Mfn text_l2 = alloc_xen_table();
  const sim::Mfn text_l1 = alloc_xen_table();
  for (std::uint64_t i = 0; i < config_.xen_frames && i < sim::kPtEntries;
       ++i) {
    mem_->write_slot(text_l1, static_cast<unsigned>(i),
                     sim::Pte::make(sim::Mfn{i},
                                    sim::Pte::kPresent | sim::Pte::kUser)
                         .raw());
  }
  mem_->write_slot(text_l2, 0,
                   sim::Pte::make(text_l1, kGuestSlotFlags).raw());
  mem_->write_slot(xen_l3_, 0, sim::Pte::make(text_l2, kGuestSlotFlags).raw());

  // Note on the pre-4.9 "linear page table" window (L3 slots 256..511 of
  // the shared Xen L3): it is *reachable* by guest walks but deliberately
  // left empty — a stock system maps nothing there. The XSA-212-priv attack
  // consists precisely of linking an attacker PMD into one of these slots;
  // removal of the window in 4.9+ is modelled by the strict reserved-slot
  // access check, not by page-table contents.

  // --- Hypervisor-private directmap at kDirectmapBase (all versions). -----
  {
    const std::uint64_t bytes = mem_->byte_size();
    const std::uint64_t two_mb = sim::kPageSize * sim::kPtEntries;
    const std::uint64_t n_l2_slots = (bytes + two_mb - 1) / two_mb;
    const std::uint64_t n_l2_tables =
        (n_l2_slots + sim::kPtEntries - 1) / sim::kPtEntries;
    constexpr std::uint64_t kSupFlags = sim::Pte::kPresent | sim::Pte::kWritable;
    for (std::uint64_t t = 0; t < n_l2_tables; ++t) {
      const sim::Mfn l2 = alloc_xen_table();
      for (std::uint64_t s = 0; s < sim::kPtEntries; ++s) {
        const std::uint64_t slot_index = t * sim::kPtEntries + s;
        if (slot_index >= n_l2_slots) break;
        const sim::Mfn base{slot_index * sim::kPtEntries};
        mem_->write_slot(
            l2, static_cast<unsigned>(s),
            sim::Pte::make(base, kSupFlags | sim::Pte::kPageSize).raw());
      }
      mem_->write_slot(directmap_l3_, static_cast<unsigned>(t),
                       sim::Pte::make(l2, kSupFlags).raw());
    }
  }

  install_reserved_slots(xen_l4_);
}

void Hypervisor::install_reserved_slots(sim::Mfn l4) {
  const unsigned xen_slot =
      sim::level_index_of(sim::Vaddr{kXenAreaBase}, sim::PtLevel::L4);
  const unsigned dm_slot =
      sim::level_index_of(sim::Vaddr{kDirectmapBase}, sim::PtLevel::L4);
  for (unsigned s = kXenFirstReservedSlot; s <= kXenLastReservedSlot; ++s) {
    if (s != xen_slot && s != dm_slot) mem_->write_slot(l4, s, 0);
  }
  mem_->write_slot(l4, xen_slot,
                   sim::Pte::make(xen_l3_, kGuestSlotFlags).raw());
  mem_->write_slot(
      l4, dm_slot,
      sim::Pte::make(directmap_l3_,
                     sim::Pte::kPresent | sim::Pte::kWritable)
          .raw());
}

void Hypervisor::install_default_idt() {
  sim::Idt table = idt();
  for (unsigned v = 0; v < sim::kIdtVectors; ++v) {
    // Handlers conceptually live in Xen text; the dispatcher recognizes
    // them by address equality, so no bytes are needed behind them.
    const std::uint64_t handler = kXenTextBase + 0x2000 + v * 16;
    default_handlers_[v] = handler;
    table.write(v, sim::IdtGate::interrupt_gate(handler));
  }
}

std::uint64_t Hypervisor::default_handler(unsigned vector) const {
  return default_handlers_.at(vector);
}

sim::Vaddr Hypervisor::sidt() const { return directmap_vaddr(idt_base_); }

void Hypervisor::log(const std::string& line) { console_.push_back(line); }

void Hypervisor::panic(const std::string& reason) {
  if (crashed_) return;
  crashed_ = true;
  if (trace_) trace_->emit(obs::TraceCategory::Panic, obs::kNoDomain);
  log("(XEN) ****************************************");
  log("(XEN) Panic on CPU 0:");
  log("(XEN) " + reason);
  log("(XEN) ****************************************");
  log("(XEN) Reboot in five seconds...");
}

// --------------------------------------------------------------- domains

DomainId Hypervisor::create_domain(const std::string& name, bool privileged,
                                   std::uint64_t nr_pages) {
  if (crashed_) throw std::logic_error{"hypervisor crashed"};
  if (domains_.empty() && !privileged) {
    throw std::logic_error{"first domain must be the privileged dom0"};
  }
  if (nr_pages < 8) throw std::invalid_argument{"domain too small"};

  const DomainId id = next_domid_++;
  auto dom = std::make_unique<Domain>(id, name, privileged);
  dom->resize_p2m(nr_pages);

  auto first = frames_.alloc_contiguous(id, nr_pages);
  if (!first) throw std::runtime_error{"out of memory for domain"};
  for (std::uint64_t p = 0; p < nr_pages; ++p) {
    const sim::Mfn mfn{first->raw() + p};
    mem_->zero_frame(mfn);
    dom->set_p2m(sim::Pfn{p}, mfn);
  }

  const sim::Mfn l4 = build_guest_tables(*dom, *first, nr_pages);
  dom->set_cr3(l4);
  dom->add_pinned(l4);
  dom->set_start_info_mfn(*first);  // pfn 0 holds start_info

  log("(XEN) d" + std::to_string(id) + " (" + name + "): " +
      std::to_string(nr_pages) + " pages at mfn 0x" + hex(first->raw()) +
      (privileged ? " [privileged]" : ""));

  Domain& ref = *dom;
  domains_.emplace(id, std::move(dom));

  // Validate + pin through the regular engine so types/refcounts are the
  // same as if the guest had pinned the tables itself.
  const long rc = get_page_type(ref, l4, PageType::L4);
  if (rc != kOk) throw std::logic_error{"initial page tables failed validation"};
  return id;
}

sim::Mfn Hypervisor::build_guest_tables(Domain& dom, sim::Mfn first_frame,
                                        std::uint64_t nr_pages) {
  // Page-table frames are taken from the TOP of the domain's own
  // machine-contiguous allocation, exactly like a PV domain builder: the
  // guest's tables are guest pages (which is what makes the XSA-148
  // superpage window able to reach them).
  const std::uint64_t l1_count = (nr_pages + sim::kPtEntries - 1) / sim::kPtEntries;
  const std::uint64_t l2_count = (l1_count + sim::kPtEntries - 1) / sim::kPtEntries;
  if (l2_count > 1) throw std::invalid_argument{"domain too large for builder"};
  const std::uint64_t table_frames = l1_count + /*l2*/ 1 + /*l3*/ 1 + /*l4*/ 1;
  if (table_frames + 4 > nr_pages) throw std::invalid_argument{"domain too small"};

  const std::uint64_t first_table_pfn = nr_pages - table_frames;
  auto table_mfn = [&](std::uint64_t k) {  // k-th table frame
    return sim::Mfn{first_frame.raw() + first_table_pfn + k};
  };
  const sim::Mfn l4 = table_mfn(table_frames - 1);
  const sim::Mfn l3 = table_mfn(table_frames - 2);
  const sim::Mfn l2 = table_mfn(table_frames - 3);
  auto l1_mfn = [&](std::uint64_t i) { return table_mfn(i); };  // i < l1_count

  auto is_table_pfn = [&](std::uint64_t pfn) {
    return pfn >= first_table_pfn;
  };

  // Leaf mappings: guest pseudo-physical page p appears at
  // kGuestKernelBase + p*4K; page-table pages are mapped read-only; the
  // grant-status window pfn is left unmapped (GrantOps manages it).
  for (std::uint64_t p = 0; p < nr_pages; ++p) {
    if (p == kGrantStatusPfn.raw()) continue;
    const sim::Mfn target{first_frame.raw() + p};
    std::uint64_t flags = sim::Pte::kPresent | sim::Pte::kUser;
    if (!is_table_pfn(p)) flags |= sim::Pte::kWritable;
    mem_->write_slot(l1_mfn(p / sim::kPtEntries),
                     static_cast<unsigned>(p % sim::kPtEntries),
                     sim::Pte::make(target, flags).raw());
  }
  for (std::uint64_t i = 0; i < l1_count; ++i) {
    mem_->write_slot(l2, static_cast<unsigned>(i),
                     sim::Pte::make(l1_mfn(i), kGuestSlotFlags).raw());
  }
  mem_->write_slot(l3, 0, sim::Pte::make(l2, kGuestSlotFlags).raw());

  const unsigned guest_slot =
      sim::level_index_of(sim::Vaddr{kGuestKernelBase}, sim::PtLevel::L4);
  mem_->write_slot(l4, guest_slot, sim::Pte::make(l3, kGuestSlotFlags).raw());
  install_reserved_slots(l4);

  (void)dom;
  return l4;
}

long Hypervisor::hypercall_domctl_destroy(DomainId caller, DomainId victim) {
  if (crashed_) return kEINVAL;
  const Domain& control = domain(caller);
  if (!control.privileged()) return kEPERM;
  auto it = domains_.find(victim);
  if (it == domains_.end()) return kENOENT;
  if (victim == caller || it->second->privileged()) return kEINVAL;
  Domain& dom = *it->second;

  // Pages shared out through grants must be unmapped by the peers first.
  if (grants_.has_foreign_mappings_of(victim)) return kEBUSY;
  grants_.domain_destroyed(victim);
  events_.domain_destroyed(victim);

  // Release page-table pins; type references cascade down the hierarchy,
  // returning every frame to type None.
  for (const sim::Mfn pinned : dom.pinned_tables()) put_page_type(pinned);

  // Free every remaining frame. Under normal operation all references are
  // gone by now; a frame with residual counts indicates an intrusion-
  // corrupted state, which teardown force-reclaims (and logs).
  std::uint64_t leaked = 0;
  for (const sim::Mfn mfn : frames_.frames_of(victim)) {
    PageInfo& pi = frames_.info(mfn);
    if (pi.type_count != 0 || pi.ref_count != 1 ||
        pi.type != PageType::None) {
      ++leaked;
      pi.type = PageType::None;
      pi.type_count = 0;
      pi.ref_count = 1;
      pi.validated = false;
    }
    if (policy_.scrub_on_destroy) mem_->zero_frame(mfn);
    frames_.free(mfn);
  }
  if (leaked > 0) {
    log("(XEN) d" + std::to_string(victim) + ": reclaimed " +
        std::to_string(leaked) + " frames with dangling references");
  }
  log("(XEN) d" + std::to_string(victim) + " destroyed (" +
      (policy_.scrub_on_destroy ? "pages scrubbed" : "pages NOT scrubbed") +
      ")");
  domains_.erase(it);
  return kOk;
}

Domain& Hypervisor::domain(DomainId id) {
  auto it = domains_.find(id);
  if (it == domains_.end()) throw std::out_of_range{"no such domain"};
  return *it->second;
}

const Domain& Hypervisor::domain(DomainId id) const {
  auto it = domains_.find(id);
  if (it == domains_.end()) throw std::out_of_range{"no such domain"};
  return *it->second;
}

std::vector<DomainId> Hypervisor::domain_ids() const {
  std::vector<DomainId> out;
  out.reserve(domains_.size());
  for (const auto& [id, dom] : domains_) out.push_back(id);
  return out;
}

// ------------------------------------------------------- guest memory access

bool Hypervisor::guest_range_blocked(sim::Vaddr va) const {
  if (!policy_.strict_reserved_slot_check) return false;
  if (!in_xen_reserved_slots(va)) return false;
  // The only reserved-area range 4.9+ still exposes to guests is the
  // read-only Xen text window.
  return !(va.raw() >= kXenTextBase &&
           va.raw() < kXenTextBase + xen_text_bytes_);
}

Expected<sim::Walk, sim::PageFault> Hypervisor::guest_walk(
    DomainId caller, sim::Vaddr va) const {
  return mmu_.walk(domain(caller).cr3(), va);
}

Expected<sim::Walk, sim::PageFault> Hypervisor::hv_translate(
    sim::Vaddr va, sim::AccessType access) const {
  return mmu_.translate(xen_l4_, va, access, sim::AccessMode::Supervisor);
}

namespace {
/// Apply `fn(paddr, chunk)` over a VA range page by page.
template <typename Translate, typename Apply>
Expected<std::monostate, sim::PageFault> for_each_page(
    sim::Vaddr va, std::uint64_t len, Translate&& translate, Apply&& apply) {
  std::uint64_t done = 0;
  while (done < len) {
    const sim::Vaddr cur = va + done;
    const std::uint64_t in_page = sim::kPageSize - sim::page_offset(cur);
    const std::uint64_t chunk = std::min(len - done, in_page);
    auto walk = translate(cur);
    if (!walk) return Unexpected{walk.error()};
    apply(walk.value().physical, done, chunk);
    done += chunk;
  }
  return std::monostate{};
}
}  // namespace

Expected<std::monostate, GuestAccessFault> Hypervisor::guest_read(
    DomainId caller, sim::Vaddr va, std::span<std::uint8_t> out) {
  if (crashed_) {
    return Unexpected{GuestAccessFault{sim::FaultReason::NotPresent,
                                       "machine halted (hypervisor crashed)"}};
  }
  if (guest_range_blocked(va)) {
    dispatch_exception(sim::kPageFaultVector);
    return Unexpected{GuestAccessFault{
        sim::FaultReason::UserProtected,
        "guest access to hardened hypervisor range refused"}};
  }
  const sim::Mfn root = domain(caller).cr3();
  auto res = for_each_page(
      va, out.size(),
      [&](sim::Vaddr v) {
        return mmu_.translate(root, v, sim::AccessType::Read,
                              sim::AccessMode::User);
      },
      [&](sim::Paddr pa, std::uint64_t off, std::uint64_t chunk) {
        mem_->read(pa, out.subspan(off, chunk));
      });
  if (!res) {
    dispatch_exception(sim::kPageFaultVector);
    return Unexpected{GuestAccessFault{res.error().reason,
                                       res.error().describe()}};
  }
  return std::monostate{};
}

Expected<std::monostate, GuestAccessFault> Hypervisor::guest_write(
    DomainId caller, sim::Vaddr va, std::span<const std::uint8_t> in) {
  if (crashed_) {
    return Unexpected{GuestAccessFault{sim::FaultReason::NotPresent,
                                       "machine halted (hypervisor crashed)"}};
  }
  if (guest_range_blocked(va)) {
    dispatch_exception(sim::kPageFaultVector);
    return Unexpected{GuestAccessFault{
        sim::FaultReason::UserProtected,
        "guest access to hardened hypervisor range refused"}};
  }
  const sim::Mfn root = domain(caller).cr3();
  auto res = for_each_page(
      va, in.size(),
      [&](sim::Vaddr v) {
        return mmu_.translate(root, v, sim::AccessType::Write,
                              sim::AccessMode::User);
      },
      [&](sim::Paddr pa, std::uint64_t off, std::uint64_t chunk) {
        mem_->write(pa, in.subspan(off, chunk));
      });
  if (!res) {
    dispatch_exception(sim::kPageFaultVector);
    return Unexpected{GuestAccessFault{res.error().reason,
                                       res.error().describe()}};
  }
  return std::monostate{};
}

// ---------------------------------------------------------------- interrupts

void Hypervisor::dispatch_exception(unsigned vector) {
  if (crashed_) return;
  if (trace_) {
    trace_->emit(obs::TraceCategory::PageFault, obs::kNoDomain, vector);
  }
  const sim::IdtGate gate = idt().read(vector);
  if (!gate.well_formed()) {
    panic("DOUBLE FAULT -- corrupt IDT gate for vector " +
          std::to_string(vector));
    return;
  }
  if (gate.handler == default_handler(vector)) {
    return;  // normal handling: fault forwarded to the guest
  }
  // Hijacked gate: the CPU vectors into whatever the handler address maps.
  auto walk = hv_translate(sim::Vaddr{gate.handler}, sim::AccessType::Execute);
  if (!walk) {
    panic("DOUBLE FAULT -- IDT vector " + std::to_string(vector) +
          " points at unmapped code (" + walk.error().describe() + ")");
    return;
  }
  if (executor_) {
    ExecutionContext ctx{};
    ctx.vector = vector;
    ctx.handler = sim::Vaddr{gate.handler};
    ctx.code_frame = sim::paddr_to_mfn(walk.value().physical);
    ctx.offset = sim::page_offset(walk.value().physical);
    executor_(ctx);
  }
}

long Hypervisor::software_interrupt(DomainId caller, unsigned vector) {
  if (crashed_) return kEINVAL;
  (void)domain(caller);  // must exist
  if (vector >= sim::kIdtVectors) return kEINVAL;
  dispatch_exception(vector);
  return kOk;
}

// ------------------------------------------------------------ small hypercalls

long Hypervisor::hypercall_set_trap_table(DomainId caller,
                                          std::span<const TrapInfo> traps) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  for (const TrapInfo& t : traps) dom.set_trap_handler(t.vector, t.address);
  return kOk;
}

long Hypervisor::hypercall_console_io(DomainId caller,
                                      const std::string& line) {
  if (crashed_) return kEINVAL;
  log("(d" + std::to_string(caller) + ") " + line);
  return kOk;
}

std::optional<sim::Paddr> Hypervisor::guest_l1_slot(const Domain& dom,
                                                    sim::Pfn pfn) const {
  const std::uint64_t nr = dom.nr_pages();
  const std::uint64_t l1_count = (nr + sim::kPtEntries - 1) / sim::kPtEntries;
  const std::uint64_t first_table_pfn = nr - (l1_count + 3);
  const auto l1 =
      dom.p2m(sim::Pfn{first_table_pfn + pfn.raw() / sim::kPtEntries});
  if (!l1) return std::nullopt;
  return sim::mfn_to_paddr(*l1) + (pfn.raw() % sim::kPtEntries) * 8;
}

long Hypervisor::map_grant_status_page(DomainId domain, sim::Mfn status_frame) {
  const Domain& dom = this->domain(domain);
  if (kGrantStatusPfn.raw() >= dom.nr_pages()) return kEINVAL;
  const auto slot = guest_l1_slot(dom, kGrantStatusPfn);
  if (!slot) return kEINVAL;
  // Hypervisor-managed read-only mapping; deliberately outside the guest
  // page-type accounting, like real status-page sharing.
  mem_->write_u64(*slot,
                  sim::Pte::make(status_frame,
                                 sim::Pte::kPresent | sim::Pte::kUser)
                      .raw());
  return kOk;
}

long Hypervisor::unmap_grant_status_page(DomainId domain) {
  const Domain& dom = this->domain(domain);
  if (kGrantStatusPfn.raw() >= dom.nr_pages()) return kEINVAL;
  const auto slot = guest_l1_slot(dom, kGrantStatusPfn);
  if (!slot) return kEINVAL;
  mem_->write_u64(*slot, 0);
  return kOk;
}

void Hypervisor::report_cpu_hang(const std::string& reason) {
  if (cpu_hung_) return;
  cpu_hung_ = true;
  if (trace_) trace_->emit(obs::TraceCategory::CpuHang, obs::kNoDomain);
  log("(XEN) " + reason);
  log("(XEN) Watchdog timer detects that CPU0 is stuck!");
}

long Hypervisor::hypercall_sched_op_shutdown(DomainId caller,
                                             ShutdownReason reason) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  if (reason == ShutdownReason::Crash) {
    dom.mark_crashed();
    log("(XEN) d" + std::to_string(caller) + " crashed (guest-requested)");
  } else {
    log("(XEN) d" + std::to_string(caller) + " shutdown");
  }
  return kOk;
}

}  // namespace ii::hv
