#include "hv/audit.hpp"

#include <cstdio>

namespace ii::hv {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

struct WalkFrame {
  sim::Mfn table;
  int level;  // 4..1
  std::uint64_t va_base;
  bool writable;
  bool user;
};

constexpr std::uint64_t level_span(int level) {
  // Bytes covered by one slot at `level`.
  return std::uint64_t{1} << (12 + 9 * (level - 1));
}

std::uint64_t sign_extend(std::uint64_t va) {
  if (va & (std::uint64_t{1} << 47)) return va | 0xFFFF000000000000ULL;
  return va;
}

// UserOnly prunes supervisor-only subtrees: the user flag can only be
// cleared going down (hardware ANDs it along the path), so once an
// intermediate entry drops it no descendant leaf can be user-reachable.
// The hypervisor-private directmap alone is one leaf per machine frame per
// domain, so the pruned walk skips the bulk of the tree.
template <bool UserOnly, typename Fn>
void walk_rec(const sim::PhysicalMemory& mem, const WalkFrame& frame,
              Fn&& fn) {
  for (unsigned i = 0; i < sim::kPtEntries; ++i) {
    const sim::Pte e{mem.read_slot(frame.table, i)};
    if (!e.present()) continue;
    const std::uint64_t va =
        sign_extend(frame.va_base + i * level_span(frame.level));
    const bool writable = frame.writable && e.writable();
    const bool user = frame.user && e.user();
    if (UserOnly && !user) continue;
    const bool leaf =
        frame.level == 1 || (e.large_page() && frame.level <= 3);
    if (leaf) {
      LeafMapping m{};
      m.va = sim::Vaddr{va};
      m.mfn = e.frame();
      m.bytes = frame.level == 1 ? sim::kPageSize : level_span(frame.level);
      m.writable = writable;
      m.user = user;
      fn(m);
      continue;
    }
    if (!mem.contains(e.frame())) continue;
    walk_rec<UserOnly>(
        mem, WalkFrame{e.frame(), frame.level - 1, va, writable, user}, fn);
  }
}

}  // namespace

void for_each_leaf(const Hypervisor& hv, sim::Mfn root,
                   const std::function<void(const LeafMapping&)>& fn) {
  walk_rec<false>(hv.memory(), WalkFrame{root, 4, 0, true, true}, fn);
}

std::vector<LeafMapping> collect_leaves(const Hypervisor& hv, sim::Mfn root) {
  std::vector<LeafMapping> leaves;
  walk_rec<false>(hv.memory(), WalkFrame{root, 4, 0, true, true},
                  [&](const LeafMapping& m) { leaves.push_back(m); });
  return leaves;
}

SystemWalk walk_system(const Hypervisor& hv) {
  SystemWalk walk;
  for (const DomainId id : hv.domain_ids()) {
    DomainWalk dw{id, {}};
    dw.leaves.reserve(hv.domain(id).nr_pages());
    walk_rec<true>(hv.memory(),
                   WalkFrame{hv.domain(id).cr3(), 4, 0, true, true},
                   [&](const LeafMapping& m) { dw.leaves.push_back(m); });
    walk.push_back(std::move(dw));
  }
  return walk;
}

std::string to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::GuestWritablePageTable:
      return "guest-writable page-table frame";
    case FindingKind::GuestWritableXenFrame:
      return "guest-writable hypervisor frame";
    case FindingKind::GuestMapsForeignFrame:
      return "guest mapping of foreign frame";
    case FindingKind::CorruptIdtGate: return "corrupt IDT gate";
    case FindingKind::ForeignXenL3Entry:
      return "foreign entry linked into shared Xen L3";
    case FindingKind::ReservedSlotTampered:
      return "tampered reserved L4 slot";
    case FindingKind::StaleGrantMapping:
      return "stale grant-status mapping after version downgrade";
  }
  return "unknown finding";
}

AuditReport audit_system(const Hypervisor& hv) {
  return audit_system(hv, walk_system(hv));
}

AuditReport audit_system(const Hypervisor& hv, const SystemWalk& walk) {
  AuditReport report;
  const sim::PhysicalMemory& mem = hv.memory();
  const FrameTable& frames = hv.frames();

  // 1. Per-domain leaf-mapping invariants, over the shared walk.
  for (const DomainWalk& dw : walk) {
    const DomainId id = dw.domain;
    const GrantTable* grant_table = hv.grants().find_table(id);
    const unsigned grant_version =
        grant_table != nullptr ? grant_table->version() : 1;
    for (const LeafMapping& m : dw.leaves) {
      if (!m.user) continue;  // supervisor-only mappings are Xen's business
      const std::uint64_t n_frames = m.bytes / sim::kPageSize;
      for (std::uint64_t k = 0; k < n_frames; ++k) {
        const sim::Mfn f{m.mfn.raw() + k};
        if (!mem.contains(f)) break;
        const PageInfo& pi = frames.info(f);
        const std::string where = "va " + hex(m.va.raw() + k * sim::kPageSize) +
                                  " -> mfn " + hex(f.raw());
        if (pi.type == PageType::GrantStatus && grant_version != 2) {
          // Keep-Page-Access erroneous state: a v2 status frame is still
          // guest-reachable although the table was downgraded (XSA-387).
          report.findings.push_back(
              {FindingKind::StaleGrantMapping, id, where});
        }
        if (is_writable_pagetable_mapping(m.writable, pi.type)) {
          report.findings.push_back(
              {FindingKind::GuestWritablePageTable, id,
               where + " (" + to_string(pi.type) + ")"});
        } else if (m.writable && pi.owner == kDomXen) {
          report.findings.push_back(
              {FindingKind::GuestWritableXenFrame, id, where});
        } else if (pi.owner != id && pi.owner != kDomXen &&
                   pi.owner != kDomInvalid) {
          report.findings.push_back(
              {FindingKind::GuestMapsForeignFrame, id,
               where + " (owner d" + std::to_string(pi.owner) + ")"});
        }
      }
    }
  }

  // 2. IDT gates vs boot-time handlers.
  sim::Idt idt{const_cast<sim::PhysicalMemory&>(mem), hv.idt_base()};
  for (unsigned v = 0; v < sim::kIdtVectors; ++v) {
    const sim::IdtGate gate = idt.read(v);
    if (gate.handler != hv.default_handler(v) || !gate.well_formed()) {
      report.findings.push_back(
          {FindingKind::CorruptIdtGate, kDomInvalid,
           "vector " + std::to_string(v) + " handler " + hex(gate.handler)});
    }
  }

  // 3. Shared Xen L3: the linear-page-table window (slots 256..511) must be
  // empty on a healthy system of any version.
  for (unsigned s = 256; s < sim::kPtEntries; ++s) {
    const sim::Pte e{mem.read_slot(hv.xen_l3(), s)};
    if (e.present()) {
      report.findings.push_back(
          {FindingKind::ForeignXenL3Entry, kDomInvalid,
           "xen_l3 slot " + std::to_string(s) + " = " + hex(e.raw())});
    }
  }

  // 4. Guest L4 reserved slots: everything except the two Xen links must be
  // empty; the Xen links must point at the shared tables.
  const unsigned xen_slot =
      sim::level_index_of(sim::Vaddr{kXenAreaBase}, sim::PtLevel::L4);
  const unsigned dm_slot =
      sim::level_index_of(sim::Vaddr{kDirectmapBase}, sim::PtLevel::L4);
  for (const DomainId id : hv.domain_ids()) {
    const Domain& dom = hv.domain(id);
    for (unsigned s = kXenFirstReservedSlot; s <= kXenLastReservedSlot; ++s) {
      const sim::Pte e{mem.read_slot(dom.cr3(), s)};
      bool ok;
      if (s == xen_slot) {
        ok = e.present() && e.frame() == hv.xen_l3();
      } else if (s == dm_slot) {
        ok = e.present();
      } else if (s == kLinearPtSlot && e.present() &&
                 !hv.policy().strict_reserved_slot_check) {
        // Pre-4.9 linear-page-table facility: a READ-ONLY self map of the
        // domain's own validated L4 is a legitimate resident of this slot —
        // exactly what validate_and_write_entry accepts. Writable (the
        // XSA-182 erroneous state), foreign or non-L4 entries are tampering.
        const PageInfo* ti =
            mem.contains(e.frame()) ? &frames.info(e.frame()) : nullptr;
        ok = !e.writable() && ti != nullptr && ti->owner == id &&
             ti->type == PageType::L4 && ti->validated;
      } else {
        ok = !e.present();
      }
      if (!ok) {
        report.findings.push_back(
            {FindingKind::ReservedSlotTampered, id,
             "l4 slot " + std::to_string(s) + " = " + hex(e.raw())});
      }
    }
  }

  return report;
}

}  // namespace ii::hv
