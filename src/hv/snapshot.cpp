// Hypervisor state capture/restore and the canonical state digest
// (see snapshot.hpp for the model).
//
// The memory contribution to state_hash() is incremental: each frame's
// FNV-1a digest is cached against the frame's PhysicalMemory write
// generation, and the machine hash recombines the per-frame digests (one
// u64 each) — so a hash after k frame writes re-reads 4 KiB * k, not the
// whole machine. Delta capture/restore use the same generations to decide
// which frames to copy; no byte comparisons anywhere.
#include "hv/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ii::hv {

namespace {

/// 64-bit FNV-1a. Not cryptographic — a dedup key for the model checker's
/// visited-state set, chosen for determinism across runs and platforms.
class Fnv1a {
 public:
  void u8(std::uint8_t v) { hash_ = (hash_ ^ v) * kPrime; }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> data) {
    // Word-at-a-time: one 8-byte load feeding eight dependent FNV steps
    // beats a byte load per step. The digest is byte-order-identical to the
    // one-byte-per-iteration loop (the chunk is consumed LSB-first, i.e. in
    // memory order on little-endian, and std::memcpy keeps it portable).
    std::size_t i = 0;
    std::uint64_t h = hash_;
    for (; i + 8 <= data.size(); i += 8) {
      std::uint64_t w = 0;
      std::memcpy(&w, data.data() + i, 8);
      h = (h ^ (w & 0xFF)) * kPrime;
      h = (h ^ ((w >> 8) & 0xFF)) * kPrime;
      h = (h ^ ((w >> 16) & 0xFF)) * kPrime;
      h = (h ^ ((w >> 24) & 0xFF)) * kPrime;
      h = (h ^ ((w >> 32) & 0xFF)) * kPrime;
      h = (h ^ ((w >> 40) & 0xFF)) * kPrime;
      h = (h ^ ((w >> 48) & 0xFF)) * kPrime;
      h = (h ^ (w >> 56)) * kPrime;
    }
    hash_ = h;
    for (; i < data.size(); ++i) u8(data[i]);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash_ = 14695981039346656037ULL;
};

std::uint64_t frame_digest(const sim::PhysicalMemory& mem, sim::Mfn mfn) {
  Fnv1a h;
  h.bytes(mem.frame_bytes(mfn));
  return h.value();
}

}  // namespace

/// Thin named wrapper so hypervisor.hpp can forward-declare the hasher the
/// bookkeeping walk writes into without exposing the FNV internals.
class StateHasher : public Fnv1a {};

void Hypervisor::hash_bookkeeping(StateHasher& h) const {
  // Frame table and the allocator's observable hidden state (future
  // allocations depend on it, so it is semantically part of the state).
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    const PageInfo& pi = frames_.info(sim::Mfn{m});
    h.u64(pi.owner);
    h.u8(static_cast<std::uint8_t>(pi.type));
    h.u64(pi.type_count);
    h.u64(pi.ref_count);
    h.boolean(pi.validated);
  }
  const FrameTable::AllocatorState alloc = frames_.allocator_state();
  h.u64(alloc.bump);
  for (const std::uint64_t f : alloc.free_list) h.u64(f);

  // Domains (std::map iterates in id order). The pin list is canonicalized
  // by sorting: pin order is an artifact of operation history, not state —
  // unpin works per-mfn regardless of order.
  for (const auto& [id, dom] : domains_) {
    h.u64(id);
    h.boolean(dom->crashed());
    h.u64(dom->cr3().raw());
    h.u64(dom->start_info_mfn().raw());
    h.u64(dom->nr_pages());
    for (std::uint64_t p = 0; p < dom->nr_pages(); ++p) {
      const auto mfn = dom->p2m(sim::Pfn{p});
      h.u64(mfn ? mfn->raw() + 1 : 0);
    }
    std::vector<std::uint64_t> pins;
    for (const sim::Mfn m : dom->pinned_tables()) pins.push_back(m.raw());
    std::sort(pins.begin(), pins.end());
    for (const std::uint64_t p : pins) h.u64(p);
    for (std::uint8_t v = 0;; ++v) {
      if (const auto handler = dom->trap_handler(v)) {
        h.u8(v);
        h.u64(handler->raw());
      }
      if (v == 255) break;
    }
  }
  h.u64(next_domid_);

  // Grant state, including the guest-visible handle counter.
  const GrantOps::State grants = grants_.state();
  for (const auto& [id, table] : grants.tables) {
    h.u64(id);
    h.u64(table.version());
    for (const GrantEntry& e : table.entries()) {
      h.u64(e.peer);
      h.u64(e.pfn.raw());
      h.boolean(e.readonly);
      h.boolean(e.in_use);
      h.u64(e.maps);
    }
    for (const sim::Mfn f : table.status_frames()) h.u64(f.raw());
  }
  for (const auto& [handle, m] : grants.mappings) {
    h.u64(handle);
    h.u64(m.mapper);
    h.u64(m.granter);
    h.u64(m.ref);
    h.u64(m.frame.raw());
    h.boolean(m.readonly);
  }
  h.u64(grants.next_handle);

  // Event channels (pending/mask bits are in the memory image already).
  const EventChannelOps::State events = events_.state();
  for (const auto& [id, ports] : events.ports) {
    h.u64(id);
    for (const auto& [port, p] : ports) {
      h.u64(port);
      h.boolean(p.allocated);
      h.u64(p.remote);
      h.boolean(p.bound);
      h.u64(p.peer_domain);
      h.u64(p.peer_port);
    }
  }
  for (const auto& [id, port] : events.handlers) {
    h.u64(id);
    h.u64(port);
  }

  // Liveness flags; the console ring is log-only and excluded.
  h.boolean(crashed_);
  h.boolean(cpu_hung_);
}

std::uint64_t Hypervisor::state_hash_impl(bool use_cache) const {
  ++snap_stats_.hash_calls;
  StateHasher h;

  // Physical memory image: one cached-or-recomputed digest per frame. The
  // machine hash consumes the digests (not the raw bytes), so the combined
  // value is identical whichever frames came from the cache.
  const std::uint64_t n = mem_->frame_count();
  if (frame_digest_.size() != n) {
    frame_digest_.assign(n, 0);
    frame_digest_gen_.assign(n, 0);  // 0 never matches a live generation
  }
  for (std::uint64_t m = 0; m < n; ++m) {
    const std::uint64_t gen = mem_->frame_generation(sim::Mfn{m});
    if (!use_cache || frame_digest_gen_[m] != gen) {
      frame_digest_[m] = frame_digest(*mem_, sim::Mfn{m});
      frame_digest_gen_[m] = gen;
      ++snap_stats_.frames_rehashed;
    } else {
      ++snap_stats_.frames_hash_cached;
    }
    h.u64(frame_digest_[m]);
  }

  hash_bookkeeping(h);
  return h.value();
}

std::uint64_t Hypervisor::state_hash() const { return state_hash_impl(true); }

std::uint64_t Hypervisor::state_hash_full() const {
  return state_hash_impl(false);
}

HvSnapshot Hypervisor::snapshot() const {
  HvSnapshot snap;
  snap.memory.resize(mem_->byte_size());
  mem_->read(sim::Paddr{0}, snap.memory);
  const auto gens = mem_->frame_generations();
  snap.frame_gens.assign(gens.begin(), gens.end());
  snap.mem_generation = mem_->generation();

  snap.frames.reserve(frames_.frame_count());
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    snap.frames.push_back(frames_.info(sim::Mfn{m}));
  }
  snap.allocator = frames_.allocator_state();

  for (const auto& [id, dom] : domains_) snap.domains.push_back(*dom);
  snap.next_domid = next_domid_;

  snap.grants = grants_.state();
  snap.events = events_.state();

  snap.crashed = crashed_;
  snap.cpu_hung = cpu_hung_;
  snap.console = console_;
  snap.hash = state_hash();
  return snap;
}

void Hypervisor::restore(const HvSnapshot& snap) {
  if (snap.memory.size() != mem_->byte_size() ||
      snap.frames.size() != frames_.frame_count() ||
      snap.frame_gens.size() != frames_.frame_count()) {
    throw std::logic_error{
        "HvSnapshot::restore: snapshot shape does not match this machine"};
  }
  ++snap_stats_.full_restores;
  snap_stats_.frames_copied += mem_->frame_count();
  // Whole-image restore re-establishes the captured (generation, contents)
  // pairs, so frame digests cached at those generations stay valid.
  mem_->restore_image(snap.memory, snap.frame_gens, snap.mem_generation);
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    frames_.info(sim::Mfn{m}) = snap.frames[m];
  }
  frames_.restore_allocator(snap.allocator);

  domains_.clear();
  for (const Domain& dom : snap.domains) {
    domains_.emplace(dom.id(), std::make_unique<Domain>(dom));
  }
  next_domid_ = snap.next_domid;

  grants_.restore(snap.grants);
  events_.restore(snap.events);

  crashed_ = snap.crashed;
  cpu_hung_ = snap.cpu_hung;
  console_ = snap.console;
}

HvDelta Hypervisor::snapshot_delta(const HvSnapshot& base) const {
  if (base.frame_gens.size() != mem_->frame_count() ||
      base.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "snapshot_delta: baseline shape does not match this machine"};
  }
  ++snap_stats_.delta_snapshots;
  HvDelta delta;
  delta.base_generation = base.mem_generation;

  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    const std::uint64_t gen = mem_->frame_generation(sim::Mfn{m});
    if (gen == base.frame_gens[m]) continue;  // same generation => same bytes
    delta.mem_frames.push_back(m);
    delta.mem_frame_gens.push_back(gen);
    const auto bytes = mem_->frame_bytes(sim::Mfn{m});
    delta.mem_bytes.insert(delta.mem_bytes.end(), bytes.begin(), bytes.end());
  }
  snap_stats_.frames_delta_captured += delta.mem_frames.size();

  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    const PageInfo& pi = frames_.info(sim::Mfn{m});
    if (!(pi == base.frames[m])) delta.frames.emplace_back(m, pi);
  }
  delta.allocator = frames_.allocator_state();

  for (const auto& [id, dom] : domains_) delta.domains.push_back(*dom);
  delta.next_domid = next_domid_;
  delta.grants = grants_.state();
  delta.events = events_.state();
  delta.crashed = crashed_;
  delta.cpu_hung = cpu_hung_;
  delta.console = console_;
  delta.hash = state_hash();
  return delta;
}

std::uint64_t Hypervisor::restore_delta(const HvSnapshot& base) {
  if (base.frame_gens.size() != mem_->frame_count() ||
      base.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "restore_delta: baseline shape does not match this machine"};
  }
  ++snap_stats_.delta_restores;
  std::uint64_t copied = 0;
  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    if (mem_->frame_generation(sim::Mfn{m}) == base.frame_gens[m]) continue;
    mem_->restore_frame(
        sim::Mfn{m},
        std::span{base.memory.data() + m * sim::kPageSize, sim::kPageSize},
        base.frame_gens[m]);
    ++copied;
  }
  snap_stats_.frames_copied += copied;

  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    frames_.info(sim::Mfn{m}) = base.frames[m];
  }
  frames_.restore_allocator(base.allocator);
  domains_.clear();
  for (const Domain& dom : base.domains) {
    domains_.emplace(dom.id(), std::make_unique<Domain>(dom));
  }
  next_domid_ = base.next_domid;
  grants_.restore(base.grants);
  events_.restore(base.events);
  crashed_ = base.crashed;
  cpu_hung_ = base.cpu_hung;
  console_ = base.console;
  return copied;
}

HvCowState Hypervisor::snapshot_cow(const HvSnapshot& base,
                                    const HvCowState* parent,
                                    std::uint64_t gen_marker) const {
  if (base.frame_gens.size() != mem_->frame_count() ||
      base.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "snapshot_cow: baseline shape does not match this machine"};
  }
  ++snap_stats_.cow_captures;
  HvCowState cow;

  // One ascending sweep, O(dirty) allocation: frames at their root
  // generation resolve to the shared root; frames written after the marker
  // (the op's own writes) are materialized into fresh blocks; everything
  // else diverged from the root but untouched since the parent was restored,
  // so it must be — and is — aliased from the parent node. The marker must
  // have been read right after the parent restore, before any mutation.
  std::size_t p = 0;  // cursor into parent->mem_frames, ascending
  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    const std::uint64_t gen = mem_->frame_generation(sim::Mfn{m});
    if (gen == base.frame_gens[m]) continue;  // same generation => same bytes
    if (gen > gen_marker) {
      auto block = std::make_shared<HvFrameBlock>();
      const auto bytes = mem_->frame_bytes(sim::Mfn{m});
      std::copy(bytes.begin(), bytes.end(), block->bytes.begin());
      cow.mem_frames.emplace_back(m, std::move(block));
      ++cow.owned_frames;
      ++snap_stats_.cow_frames_copied;
      continue;
    }
    if (parent != nullptr) {
      while (p < parent->mem_frames.size() &&
             parent->mem_frames[p].first < m) {
        ++p;
      }
      if (p < parent->mem_frames.size() && parent->mem_frames[p].first == m) {
        cow.mem_frames.emplace_back(m, parent->mem_frames[p].second);
        ++snap_stats_.cow_frames_shared;
        continue;
      }
    }
    throw std::logic_error{
        "snapshot_cow: frame diverged before the capture marker but is "
        "absent from the parent node"};
  }

  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    const PageInfo& pi = frames_.info(sim::Mfn{m});
    if (!(pi == base.frames[m])) cow.frames.emplace_back(m, pi);
  }
  cow.allocator = frames_.allocator_state();
  for (const auto& [id, dom] : domains_) cow.domains.push_back(*dom);
  cow.next_domid = next_domid_;
  cow.grants = grants_.state();
  cow.events = events_.state();
  cow.crashed = crashed_;
  cow.cpu_hung = cpu_hung_;
  cow.console = console_;
  cow.hash = state_hash();
  return cow;
}

std::uint64_t Hypervisor::restore_cow(const HvSnapshot& base,
                                      const HvCowState& cow) {
  if (base.frame_gens.size() != mem_->frame_count() ||
      base.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "restore_cow: baseline shape does not match this machine"};
  }
  ++snap_stats_.cow_restores;
  std::uint64_t copied = 0;

  // Same sweep as a foreign delta restore: node frames go through write()
  // (CoW nodes carry no generations — they may have been captured on any
  // identically booted machine), frames diverged from the root that the
  // node does not carry are rewound to the root's boot-time generations.
  std::size_t d = 0;
  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    if (d < cow.mem_frames.size() && cow.mem_frames[d].first == m) {
      mem_->write(sim::mfn_to_paddr(sim::Mfn{m}),
                  std::span<const std::uint8_t>{cow.mem_frames[d].second->bytes});
      ++copied;
      ++d;
      continue;
    }
    if (mem_->frame_generation(sim::Mfn{m}) != base.frame_gens[m]) {
      mem_->restore_frame(
          sim::Mfn{m},
          std::span{base.memory.data() + m * sim::kPageSize, sim::kPageSize},
          base.frame_gens[m]);
      ++copied;
    }
  }
  snap_stats_.frames_copied += copied;

  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    frames_.info(sim::Mfn{m}) = base.frames[m];
  }
  for (const auto& [m, pi] : cow.frames) frames_.info(sim::Mfn{m}) = pi;
  frames_.restore_allocator(cow.allocator);
  domains_.clear();
  for (const Domain& dom : cow.domains) {
    domains_.emplace(dom.id(), std::make_unique<Domain>(dom));
  }
  next_domid_ = cow.next_domid;
  grants_.restore(cow.grants);
  events_.restore(cow.events);
  crashed_ = cow.crashed;
  cpu_hung_ = cow.cpu_hung;
  console_ = cow.console;
  return copied;
}

std::uint64_t Hypervisor::restore_delta(const HvSnapshot& base,
                                        const HvDelta& delta, bool foreign) {
  if (base.frame_gens.size() != mem_->frame_count() ||
      base.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "restore_delta: baseline shape does not match this machine"};
  }
  if (delta.base_generation != base.mem_generation) {
    throw std::logic_error{
        "restore_delta: delta was captured against a different baseline"};
  }
  ++snap_stats_.delta_restores;
  std::uint64_t copied = 0;

  // One ascending sweep: frames the delta carries get the delta's bytes and
  // recorded generation; frames it does not carry are identical to the
  // baseline in the target state, so any that have diverged here are
  // rewound to the baseline. A foreign delta's generations belong to the
  // machine that captured it and could collide with generations this
  // machine already stamped on different bytes (poisoning the digest
  // cache), so its frames go through write() — a fresh generation per
  // frame. Rewinds always use the baseline's generations: `base` is this
  // machine's own root, and an identically booted capturer shares its
  // boot-time (generation, content) pairs.
  std::size_t d = 0;
  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    if (d < delta.mem_frames.size() && delta.mem_frames[d] == m) {
      const std::span bytes{delta.mem_bytes.data() + d * sim::kPageSize,
                            sim::kPageSize};
      if (foreign) {
        mem_->write(sim::mfn_to_paddr(sim::Mfn{m}), bytes);
      } else {
        mem_->restore_frame(sim::Mfn{m}, bytes, delta.mem_frame_gens[d]);
      }
      ++copied;
      ++d;
      continue;
    }
    if (mem_->frame_generation(sim::Mfn{m}) != base.frame_gens[m]) {
      mem_->restore_frame(
          sim::Mfn{m},
          std::span{base.memory.data() + m * sim::kPageSize, sim::kPageSize},
          base.frame_gens[m]);
      ++copied;
    }
  }
  snap_stats_.frames_copied += copied;

  // Bookkeeping: baseline frame table with the delta's overrides, then the
  // delta's full (small) state.
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    frames_.info(sim::Mfn{m}) = base.frames[m];
  }
  for (const auto& [m, pi] : delta.frames) frames_.info(sim::Mfn{m}) = pi;
  frames_.restore_allocator(delta.allocator);
  domains_.clear();
  for (const Domain& dom : delta.domains) {
    domains_.emplace(dom.id(), std::make_unique<Domain>(dom));
  }
  next_domid_ = delta.next_domid;
  grants_.restore(delta.grants);
  events_.restore(delta.events);
  crashed_ = delta.crashed;
  cpu_hung_ = delta.cpu_hung;
  console_ = delta.console;
  return copied;
}

}  // namespace ii::hv
