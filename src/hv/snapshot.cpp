// Hypervisor state capture/restore and the canonical state digest
// (see snapshot.hpp for the model).
#include "hv/snapshot.hpp"

#include <algorithm>
#include <stdexcept>

namespace ii::hv {

namespace {

/// 64-bit FNV-1a. Not cryptographic — a dedup key for the model checker's
/// visited-state set, chosen for determinism across runs and platforms.
class Fnv1a {
 public:
  void u8(std::uint8_t v) { hash_ = (hash_ ^ v) * kPrime; }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> data) {
    for (const std::uint8_t b : data) u8(b);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash_ = 14695981039346656037ULL;
};

}  // namespace

std::uint64_t Hypervisor::state_hash() const {
  Fnv1a h;

  // Physical memory image: page tables, the IDT, guest data.
  for (std::uint64_t m = 0; m < mem_->frame_count(); ++m) {
    h.bytes(mem_->frame_bytes(sim::Mfn{m}));
  }

  // Frame table and the allocator's observable hidden state (future
  // allocations depend on it, so it is semantically part of the state).
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    const PageInfo& pi = frames_.info(sim::Mfn{m});
    h.u64(pi.owner);
    h.u8(static_cast<std::uint8_t>(pi.type));
    h.u64(pi.type_count);
    h.u64(pi.ref_count);
    h.boolean(pi.validated);
  }
  const FrameTable::AllocatorState alloc = frames_.allocator_state();
  h.u64(alloc.bump);
  for (const std::uint64_t f : alloc.free_list) h.u64(f);

  // Domains (std::map iterates in id order). The pin list is canonicalized
  // by sorting: pin order is an artifact of operation history, not state —
  // unpin works per-mfn regardless of order.
  for (const auto& [id, dom] : domains_) {
    h.u64(id);
    h.boolean(dom->crashed());
    h.u64(dom->cr3().raw());
    h.u64(dom->start_info_mfn().raw());
    h.u64(dom->nr_pages());
    for (std::uint64_t p = 0; p < dom->nr_pages(); ++p) {
      const auto mfn = dom->p2m(sim::Pfn{p});
      h.u64(mfn ? mfn->raw() + 1 : 0);
    }
    std::vector<std::uint64_t> pins;
    for (const sim::Mfn m : dom->pinned_tables()) pins.push_back(m.raw());
    std::sort(pins.begin(), pins.end());
    for (const std::uint64_t p : pins) h.u64(p);
    for (std::uint8_t v = 0;; ++v) {
      if (const auto handler = dom->trap_handler(v)) {
        h.u8(v);
        h.u64(handler->raw());
      }
      if (v == 255) break;
    }
  }
  h.u64(next_domid_);

  // Grant state, including the guest-visible handle counter.
  const GrantOps::State grants = grants_.state();
  for (const auto& [id, table] : grants.tables) {
    h.u64(id);
    h.u64(table.version());
    for (const GrantEntry& e : table.entries()) {
      h.u64(e.peer);
      h.u64(e.pfn.raw());
      h.boolean(e.readonly);
      h.boolean(e.in_use);
      h.u64(e.maps);
    }
    for (const sim::Mfn f : table.status_frames()) h.u64(f.raw());
  }
  for (const auto& [handle, m] : grants.mappings) {
    h.u64(handle);
    h.u64(m.mapper);
    h.u64(m.granter);
    h.u64(m.ref);
    h.u64(m.frame.raw());
    h.boolean(m.readonly);
  }
  h.u64(grants.next_handle);

  // Event channels (pending/mask bits are in the memory image already).
  const EventChannelOps::State events = events_.state();
  for (const auto& [id, ports] : events.ports) {
    h.u64(id);
    for (const auto& [port, p] : ports) {
      h.u64(port);
      h.boolean(p.allocated);
      h.u64(p.remote);
      h.boolean(p.bound);
      h.u64(p.peer_domain);
      h.u64(p.peer_port);
    }
  }
  for (const auto& [id, port] : events.handlers) {
    h.u64(id);
    h.u64(port);
  }

  // Liveness flags; the console ring is log-only and excluded.
  h.boolean(crashed_);
  h.boolean(cpu_hung_);
  return h.value();
}

HvSnapshot Hypervisor::snapshot() const {
  HvSnapshot snap;
  snap.memory.resize(mem_->byte_size());
  mem_->read(sim::Paddr{0}, snap.memory);

  snap.frames.reserve(frames_.frame_count());
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    snap.frames.push_back(frames_.info(sim::Mfn{m}));
  }
  snap.allocator = frames_.allocator_state();

  for (const auto& [id, dom] : domains_) snap.domains.push_back(*dom);
  snap.next_domid = next_domid_;

  snap.grants = grants_.state();
  snap.events = events_.state();

  snap.crashed = crashed_;
  snap.cpu_hung = cpu_hung_;
  snap.console = console_;
  snap.hash = state_hash();
  return snap;
}

void Hypervisor::restore(const HvSnapshot& snap) {
  if (snap.memory.size() != mem_->byte_size() ||
      snap.frames.size() != frames_.frame_count()) {
    throw std::logic_error{
        "HvSnapshot::restore: snapshot shape does not match this machine"};
  }
  mem_->write(sim::Paddr{0}, snap.memory);
  for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
    frames_.info(sim::Mfn{m}) = snap.frames[m];
  }
  frames_.restore_allocator(snap.allocator);

  domains_.clear();
  for (const Domain& dom : snap.domains) {
    domains_.emplace(dom.id(), std::make_unique<Domain>(dom));
  }
  next_domid_ = snap.next_domid;

  grants_.restore(snap.grants);
  events_.restore(snap.events);

  crashed_ = snap.crashed;
  cpu_hung_ = snap.cpu_hung;
  console_ = snap.console;
}

}  // namespace ii::hv
