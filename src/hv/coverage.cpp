#include "hv/coverage.hpp"

namespace ii::hv {

std::string to_string(ValidationBranch b) {
  switch (b) {
    case ValidationBranch::EntryNonPresent: return "entry_non_present";
    case ValidationBranch::EntryReservedBits: return "entry_reserved_bits";
    case ValidationBranch::EntryBadFrame: return "entry_bad_frame";
    case ValidationBranch::Xsa148PseAccepted: return "xsa148_pse_accepted";
    case ValidationBranch::PseRejected: return "pse_rejected";
    case ValidationBranch::EntryForeignFrame: return "entry_foreign_frame";
    case ValidationBranch::L1Writable: return "l1_writable";
    case ValidationBranch::L1ReadOnlyRef: return "l1_readonly_ref";
    case ValidationBranch::IntermediateLink: return "intermediate_link";
    case ValidationBranch::TypeWritableOk: return "type_writable_ok";
    case ValidationBranch::TypeWritableBusy: return "type_writable_busy";
    case ValidationBranch::TypeTableRef: return "type_table_ref";
    case ValidationBranch::TypeTableBusy: return "type_table_busy";
    case ValidationBranch::TypeTableValidated: return "type_table_validated";
    case ValidationBranch::TypeTableRejected: return "type_table_rejected";
    case ValidationBranch::ReservedSlotStrict: return "reserved_slot_strict";
    case ValidationBranch::ReservedSlotNonLinear:
      return "reserved_slot_non_linear";
    case ValidationBranch::LinearSlotCleared: return "linear_slot_cleared";
    case ValidationBranch::LinearRoSelfMap: return "linear_ro_self_map";
    case ValidationBranch::Xsa182FastpathTaken: return "xsa182_fastpath_taken";
    case ValidationBranch::LinearRwRefused: return "linear_rw_refused";
    case ValidationBranch::ExchangeOutputChecked:
      return "exchange_output_checked";
    case ValidationBranch::ExchangeOutputUnchecked:
      return "exchange_output_unchecked";
    case ValidationBranch::ExchangeBusy: return "exchange_busy";
    case ValidationBranch::PinOk: return "pin_ok";
    case ValidationBranch::PinRefused: return "pin_refused";
    case ValidationBranch::UnpinOk: return "unpin_ok";
    case ValidationBranch::UnpinRefused: return "unpin_refused";
    case ValidationBranch::BaseptrOk: return "baseptr_ok";
    case ValidationBranch::BaseptrRefused: return "baseptr_refused";
    case ValidationBranch::GrantStatusMapped: return "grant_status_mapped";
    case ValidationBranch::GrantDowngradeLeak: return "grant_downgrade_leak";
    case ValidationBranch::GrantDowngradeClean: return "grant_downgrade_clean";
    case ValidationBranch::InjectorServed: return "injector_served";
    case ValidationBranch::InjectorRefused: return "injector_refused";
  }
  return "unknown";
}

}  // namespace ii::hv
