// Simulated Xen x86-64 virtual-memory layout.
//
// Mirrors the shape of the real PV layout the paper relies on:
//
//   L4 slots 256..271 (0xffff8000'00000000 .. 0xffff87ff'ffffffff) are
//   Xen-reserved. Inside them:
//     - Xen text/data is mapped guest-readable (the paper: "the range
//       0xffff800000000000-0xffff807fffffffff is read-only for guest
//       domains");
//     - pre-4.9 only: a guest-reachable RWX alias of all machine memory at
//       0xffff8040'00000000 (the "512GB RWX mapping of the linear page
//       table" whose removal §VIII credits for Xen 4.13's resilience);
//     - a hypervisor-private directmap of all machine memory at
//       0xffff8300'00000000 (supervisor-only, present in every version —
//       this is what keeps the *injector* fully functional on 4.13).
//
//   L4 slots >= 272 (0xffff8800'00000000 ..) belong to the guest kernel,
//   matching where the XSA-148 PoC's logged addresses (ffff880078000000)
//   live; the low canonical half is guest user space.
#pragma once

#include "sim/pte.hpp"
#include "sim/types.hpp"

namespace ii::hv {

/// First and last L4 slots reserved for the hypervisor.
inline constexpr unsigned kXenFirstReservedSlot = 256;
inline constexpr unsigned kXenLastReservedSlot = 271;

/// Base of the Xen-reserved area (L4 slot 256).
inline constexpr std::uint64_t kXenAreaBase = 0xFFFF800000000000ULL;

/// Guest-readable mapping of Xen text/data (L4 slot 256, L3 slots 0..255).
inline constexpr std::uint64_t kXenTextBase = kXenAreaBase;

/// Guest-reachable RWX alias of machine memory, pre-4.9 only
/// (L4 slot 256, L3 slots 256..511).
inline constexpr std::uint64_t kLinearAliasBase = 0xFFFF804000000000ULL;

/// Hypervisor-private directmap of machine memory (L4 slot 262).
inline constexpr std::uint64_t kDirectmapBase = 0xFFFF830000000000ULL;

/// Base of the guest kernel's own area (first non-reserved high slot, 272).
inline constexpr std::uint64_t kGuestKernelBase = 0xFFFF880000000000ULL;

/// Historical "linear page table" L4 slot: pre-4.9 Xen let PV guests install
/// a read-only same-level (self) mapping here — the facility the XSA-182
/// use case abuses. 4.9+ rejects guest entries in every reserved slot.
inline constexpr unsigned kLinearPtSlot = 258;

// --- Well-known guest pseudo-physical pages (domain-builder contract) ------

/// start_info page (fingerprintable; scanned by the XSA-148 PoC).
inline constexpr sim::Pfn kStartInfoPfn{0};
/// vDSO page (the XSA-148 backdoor patch target).
inline constexpr sim::Pfn kVdsoPfn{1};
/// shared_info page: event-channel pending/mask bitmaps live here.
inline constexpr sim::Pfn kSharedInfoPfn{2};
/// Window left unmapped by the builder; grant-v2 status pages appear here.
inline constexpr sim::Pfn kGrantStatusPfn{3};
/// First page of the guest kernel's free pool.
inline constexpr sim::Pfn kFirstFreePfn{4};

[[nodiscard]] constexpr bool in_xen_reserved_slots(sim::Vaddr va) {
  const unsigned l4 = sim::level_index_of(va, sim::PtLevel::L4);
  return sim::is_canonical(va) && l4 >= kXenFirstReservedSlot &&
         l4 <= kXenLastReservedSlot;
}

/// Size of the alias window: the upper 256 GiB of L4 slot 256
/// (L3 slots 256..511).
inline constexpr std::uint64_t kLinearAliasBytes = std::uint64_t{1} << 38;

[[nodiscard]] constexpr bool in_linear_alias(sim::Vaddr va) {
  return va.raw() >= kLinearAliasBase &&
         va.raw() - kLinearAliasBase < kLinearAliasBytes;
}

/// Linear address at which the hypervisor sees a physical byte address.
[[nodiscard]] constexpr sim::Vaddr directmap_vaddr(sim::Paddr pa) {
  return sim::Vaddr{kDirectmapBase + pa.raw()};
}

/// Guest-reachable alias address of a physical byte address (pre-4.9).
[[nodiscard]] constexpr sim::Vaddr alias_vaddr(sim::Paddr pa) {
  return sim::Vaddr{kLinearAliasBase + pa.raw()};
}

/// Guest-kernel directmap address of the n-th byte of guest pseudo-physical
/// memory (the guest maps pfn p at kGuestKernelBase + p * 4K).
[[nodiscard]] constexpr sim::Vaddr guest_directmap_vaddr(sim::Pfn pfn,
                                                         std::uint64_t off = 0) {
  return sim::Vaddr{kGuestKernelBase + (pfn.raw() << sim::kPageShift) + off};
}

}  // namespace ii::hv
