// Hypervisor-side domain state (the "struct domain" of the simulator).
//
// Guest-kernel behaviour (filesystem, processes, exploit modules) lives in
// ii::guest; this class only holds what the hypervisor itself tracks per
// domain: the pseudo-physical-to-machine (P2M) map, the paging base, pinned
// tables, registered trap handlers, and lifecycle state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hv/frame_table.hpp"
#include "sim/types.hpp"

namespace ii::hv {

class Domain {
 public:
  Domain(DomainId id, std::string name, bool privileged)
      : id_{id}, name_{std::move(name)}, privileged_{privileged} {}

  [[nodiscard]] DomainId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool privileged() const { return privileged_; }

  // -- P2M ------------------------------------------------------------------
  /// Number of pseudo-physical pages the domain was built with.
  [[nodiscard]] std::uint64_t nr_pages() const { return p2m_.size(); }

  /// Machine frame backing pseudo-physical frame `pfn`, if populated.
  [[nodiscard]] std::optional<sim::Mfn> p2m(sim::Pfn pfn) const {
    const auto raw = pfn.raw();
    return raw < p2m_.size() ? p2m_[raw] : std::nullopt;
  }
  void set_p2m(sim::Pfn pfn, std::optional<sim::Mfn> mfn) {
    p2m_.at(pfn.raw()) = mfn;
  }
  void resize_p2m(std::uint64_t pages) { p2m_.resize(pages); }

  // -- paging ---------------------------------------------------------------
  [[nodiscard]] sim::Mfn cr3() const { return cr3_; }
  void set_cr3(sim::Mfn root) { cr3_ = root; }

  [[nodiscard]] const std::vector<sim::Mfn>& pinned_tables() const {
    return pinned_;
  }
  void add_pinned(sim::Mfn mfn) { pinned_.push_back(mfn); }
  bool remove_pinned(sim::Mfn mfn) {
    for (auto it = pinned_.begin(); it != pinned_.end(); ++it) {
      if (*it == mfn) {
        pinned_.erase(it);
        return true;
      }
    }
    return false;
  }

  // -- traps ----------------------------------------------------------------
  void set_trap_handler(std::uint8_t vector, sim::Vaddr handler) {
    trap_table_[vector] = handler;
  }
  [[nodiscard]] std::optional<sim::Vaddr> trap_handler(
      std::uint8_t vector) const {
    auto it = trap_table_.find(vector);
    return it == trap_table_.end() ? std::nullopt
                                   : std::optional<sim::Vaddr>{it->second};
  }

  // -- lifecycle --------------------------------------------------------------
  [[nodiscard]] bool crashed() const { return crashed_; }
  void mark_crashed() { crashed_ = true; }

  /// Machine frame of the start_info page (set by the domain builder).
  [[nodiscard]] sim::Mfn start_info_mfn() const { return start_info_mfn_; }
  void set_start_info_mfn(sim::Mfn m) { start_info_mfn_ = m; }

 private:
  DomainId id_;
  std::string name_;
  bool privileged_;
  std::vector<std::optional<sim::Mfn>> p2m_;
  sim::Mfn cr3_{};
  std::vector<sim::Mfn> pinned_;
  std::map<std::uint8_t, sim::Vaddr> trap_table_;
  bool crashed_ = false;
  sim::Mfn start_info_mfn_{};
};

}  // namespace ii::hv
