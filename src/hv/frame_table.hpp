// Frame table: per-machine-frame ownership, type and reference tracking.
//
// This is the simulator's equivalent of Xen's `struct page_info` array and
// the heart of PV memory safety. Xen's direct-paging security invariant —
// the one every vulnerability in the paper's use cases breaks — is enforced
// through page *types*: a frame validated as a page-table page (L1..L4) must
// never simultaneously be mapped writable by a guest, and vice versa. The
// hypervisor's entry-validation code acquires and releases type references
// here; the monitors audit it; the exploits bypass it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ii::hv {

/// Domain identifier. 0 is the privileged control domain (dom0).
using DomainId = std::uint16_t;

inline constexpr DomainId kDom0 = 0;
/// Owner of hypervisor-private frames (Xen text/data, IDT, grant status).
inline constexpr DomainId kDomXen = 0x7FF0;
/// "No domain" marker for free frames.
inline constexpr DomainId kDomInvalid = 0x7FFF;

/// Validated role of a frame. Mirrors Xen's PGT_* types.
enum class PageType : std::uint8_t {
  None,         ///< no constrained use yet
  L1,           ///< leaf page-table page
  L2,
  L3,
  L4,           ///< top-level page-table page
  Writable,     ///< mapped writable by at least one guest mapping
  SegDesc,      ///< descriptor-table page (GDT/LDT/IDT)
  GrantStatus,  ///< grant-table v2 status page
  XenHeap,      ///< hypervisor-private allocation
};

[[nodiscard]] std::string to_string(PageType type);

/// True for the four page-table types.
[[nodiscard]] constexpr bool is_pagetable_type(PageType t) {
  return t == PageType::L1 || t == PageType::L2 || t == PageType::L3 ||
         t == PageType::L4;
}

/// Page-table type for a numeric walk level (1..4), None otherwise.
[[nodiscard]] constexpr PageType pagetable_type_of_level(int level) {
  switch (level) {
    case 1: return PageType::L1;
    case 2: return PageType::L2;
    case 3: return PageType::L3;
    case 4: return PageType::L4;
    default: return PageType::None;
  }
}

/// The direct-paging core invariant, in predicate form: a guest-reachable
/// mapping with write rights must never cover a frame in page-table use.
/// Shared by the auditor (audit.cpp), the recovery sanitizer (recovery.cpp)
/// and the model checker (src/analysis) so all three agree by construction.
[[nodiscard]] constexpr bool is_writable_pagetable_mapping(bool writable,
                                                           PageType frame_type) {
  return writable && is_pagetable_type(frame_type);
}

/// Book-keeping for one machine frame.
struct PageInfo {
  DomainId owner = kDomInvalid;
  PageType type = PageType::None;
  /// References holding the frame at its current type (e.g. the number of
  /// validated upper-level entries pointing at a page-table page, or the
  /// number of writable mappings of a Writable page).
  std::uint32_t type_count = 0;
  /// General existence references (allocation itself counts as one).
  std::uint32_t ref_count = 0;
  /// Set once the frame's contents passed validation for its type.
  bool validated = false;

  friend bool operator==(const PageInfo&, const PageInfo&) = default;
};

/// The frame table plus a simple FIFO frame allocator.
///
/// The allocator's FIFO recycling is deliberately observable: the XSA-212
/// privilege-escalation exploit grooms allocation so that the machine frame
/// number returned by `memory_exchange` has attacker-chosen low bits, and a
/// FIFO free list makes frame numbers cycle predictably, just like the
/// paper's real-world exploit relied on allocator predictability.
class FrameTable {
 public:
  explicit FrameTable(std::uint64_t frames);

  [[nodiscard]] std::uint64_t frame_count() const { return info_.size(); }

  [[nodiscard]] PageInfo& info(sim::Mfn mfn);
  [[nodiscard]] const PageInfo& info(sim::Mfn mfn) const;

  /// Allocate one free frame for `owner`. Returns nullopt when memory is
  /// exhausted. The frame comes back with type None, ref_count 1.
  /// Prefers never-allocated frames (sequential MFNs — what exchange's
  /// fresh-chunk allocation models, and what the XSA-212 grooming relies
  /// on), falling back to the free list.
  [[nodiscard]] std::optional<sim::Mfn> alloc(DomainId owner);

  /// Allocate preferring recently-freed frames (FIFO) — what heap reuse on
  /// ballooning (populate_physmap) models. Falls back to the bump region.
  [[nodiscard]] std::optional<sim::Mfn> alloc_prefer_recycled(DomainId owner);

  /// Allocate `count` machine-contiguous frames (used by the domain builder
  /// so that XSA-148's 2 MiB superpage window is meaningful).
  [[nodiscard]] std::optional<sim::Mfn> alloc_contiguous(DomainId owner,
                                                         std::uint64_t count);

  /// Return a frame to the free list. Requires ref_count==1, type_count==0.
  void free(sim::Mfn mfn);

  /// Frames currently allocated to `owner`.
  [[nodiscard]] std::vector<sim::Mfn> frames_of(DomainId owner) const;

  [[nodiscard]] std::uint64_t free_frames() const;

  /// The allocator's complete hidden state. Snapshot/restore (see
  /// hv/snapshot.hpp) must capture it because allocation order is
  /// semantically observable: the XSA-212 grooming depends on it, and a
  /// restored state must hand out the same frames as the original would.
  struct AllocatorState {
    std::deque<std::uint64_t> free_list;
    std::uint64_t bump = 0;
  };
  [[nodiscard]] AllocatorState allocator_state() const {
    return AllocatorState{free_list_, bump_};
  }
  void restore_allocator(AllocatorState state) {
    free_list_ = std::move(state.free_list);
    bump_ = state.bump;
  }

 private:
  std::vector<PageInfo> info_;
  std::deque<std::uint64_t> free_list_;  // FIFO
  std::uint64_t bump_ = 0;               // next never-allocated frame
};

}  // namespace ii::hv
