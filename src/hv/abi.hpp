// Guest-visible hypercall ABI structures.
//
// Shapes follow the real Xen PV interface closely enough that the paper's
// exploit strategies translate step for step:
//  - mmu_update takes (machine pointer, value) pairs whose pointer low bits
//    encode the update command;
//  - memory_exchange returns the replacement frames by *writing them through
//    a guest-supplied pointer* — the exact field (out.extent_start) whose
//    missing validation is XSA-212;
//  - arbitrary_access is the paper's §V-B injector hypercall, verbatim:
//    (addr, buffer, n, action ∈ {read,write} × {linear,physical}).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/pte.hpp"
#include "sim/types.hpp"

namespace ii::hv {

// ---------------------------------------------------------------- mmu_update

/// Commands encoded in the low 2 bits of MmuUpdate::ptr.
inline constexpr std::uint64_t kMmuNormalPtUpdate = 0;   ///< validate & write PTE
inline constexpr std::uint64_t kMmuMachphysUpdate = 1;   ///< update M2P entry
inline constexpr std::uint64_t kMmuPtUpdatePreserveAd = 2;

/// One request of a HYPERVISOR_mmu_update batch.
struct MmuUpdate {
  /// Machine byte address of the 8-byte slot to update, OR'ed with a
  /// command in the low 2 bits.
  std::uint64_t ptr = 0;
  /// New raw entry value.
  std::uint64_t val = 0;

  [[nodiscard]] std::uint64_t command() const { return ptr & 0x3; }
  [[nodiscard]] sim::Paddr target() const { return sim::Paddr{ptr & ~0x3ULL}; }
};

// ------------------------------------------------------------------ mmuext_op

enum class MmuExtCmd {
  PinL1Table,
  PinL2Table,
  PinL3Table,
  PinL4Table,
  UnpinTable,
  NewBaseptr,      ///< switch the calling vCPU's CR3
  TlbFlushLocal,   ///< accepted, no-op (the simulator has no TLB)
  InvlpgLocal,     ///< accepted, no-op
};

struct MmuExtOp {
  MmuExtCmd cmd{};
  sim::Mfn mfn{};  ///< table to pin/unpin or new base pointer
};

// ------------------------------------------------------------ memory_exchange

/// HYPERVISOR_memory_op(XENMEM_exchange). The guest trades `in_extents`
/// (its own pseudo-physical pages) for freshly allocated machine pages; the
/// hypervisor reports each replacement MFN by storing a 64-bit value at
/// `out_extent_start + 8*i`.
struct MemoryExchange {
  std::vector<sim::Pfn> in_extents;
  /// Guest-provided destination for the replacement MFNs. Byte-granular,
  /// exactly like a real guest handle. XSA-212 is the absence of the
  /// access_ok() range check on this field.
  sim::Vaddr out_extent_start{};
  /// Progress counter, updated by the hypervisor as extents complete
  /// (also where the real exploit's `+ 8 * exch.nr_exchanged` offset
  /// comes from).
  std::uint64_t nr_exchanged = 0;
};

// ------------------------------------------------------------ set_trap_table

/// One registered guest exception handler.
struct TrapInfo {
  std::uint8_t vector = 0;
  sim::Vaddr address{};  ///< guest-space handler address
};

// --------------------------------------------------------- arbitrary_access

/// Injector hypercall actions (paper §V-B). Linear addresses resolve through
/// the hypervisor's own address space; physical addresses are mapped into it
/// first (our directmap models Xen's map_domain_page()).
enum class AccessAction {
  ReadLinear,
  WriteLinear,
  ReadPhysical,
  WritePhysical,
};

[[nodiscard]] constexpr bool is_write(AccessAction a) {
  return a == AccessAction::WriteLinear || a == AccessAction::WritePhysical;
}
[[nodiscard]] constexpr bool is_linear(AccessAction a) {
  return a == AccessAction::ReadLinear || a == AccessAction::WriteLinear;
}

/// HYPERVISOR_arbitrary_access(addr, buff, n, action): `buffer` plays the
/// role of the guest buffer `buff` of length n.
struct ArbitraryAccess {
  std::uint64_t addr = 0;
  std::span<std::uint8_t> buffer{};
  AccessAction action = AccessAction::ReadLinear;
};

// -------------------------------------------------------------------- sched_op

enum class ShutdownReason { Poweroff, Reboot, Crash };

}  // namespace ii::hv
