// ReHype-style in-place hypervisor recovery (see recovery.hpp).
//
// The recovery strategy mirrors ReHype's key observation: almost all of the
// state a hypervisor failure (or an injected intrusion) can corrupt is
// *derived* state — the IDT derives from the boot-time handler table, frame
// types and reference counts derive from the page tables and grant state,
// the reserved L4 slots derive from Xen's own tables. Guest memory contents
// are the ground truth that must survive. recover() therefore throws the
// derived bookkeeping away and rebuilds it by re-running the same
// validation engine the live hypercall paths use, after a sanitizer pass
// has cleared every page-table entry that could never have passed
// validation legitimately.
#include "hv/recovery.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "core/chaos.hpp"
#include "hv/audit.hpp"
#include "hv/errors.hpp"
#include "hv/layout.hpp"
#include "obs/span.hpp"

namespace ii::hv {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

bool guest_l4_slot(unsigned index) {
  return index < kXenFirstReservedSlot || index > kXenLastReservedSlot;
}

}  // namespace

std::string to_string(Invariant invariant) {
  switch (invariant) {
    case Invariant::Liveness: return "liveness";
    case Invariant::FrameTypeSafety: return "frame-type-safety";
    case Invariant::AddressSpaceIsolation: return "address-space-isolation";
    case Invariant::IdtIntegrity: return "idt-integrity";
    case Invariant::XenL3Hygiene: return "xen-l3-hygiene";
    case Invariant::ReservedSlotIntegrity: return "reserved-slot-integrity";
    case Invariant::GrantLifecycle: return "grant-lifecycle";
    case Invariant::P2mConsistency: return "p2m-consistency";
    case Invariant::RefcountConsistency: return "refcount-consistency";
  }
  return "unknown";
}

std::vector<Invariant> InvariantReport::violated_set() const {
  std::vector<Invariant> out;
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    const auto inv = static_cast<Invariant>(i);
    if (violated(inv)) out.push_back(inv);
  }
  return out;
}

std::vector<Invariant> RecoveryReport::restored() const {
  std::vector<Invariant> out;
  for (const Invariant inv : pre.violated_set()) {
    if (!post.violated(inv)) out.push_back(inv);
  }
  return out;
}

// ----------------------------------------------------------------- auditor

InvariantReport InvariantAuditor::audit() const {
  return audit(walk_system(*hv_));
}

InvariantReport InvariantAuditor::audit(const SystemWalk& walk) const {
  InvariantReport report;
  const Hypervisor& hv = *hv_;

  const std::vector<DomainId> ids = hv.domain_ids();
  // Invariants quantify over *runnable* domains: a crashed VM never executes
  // again, so its (possibly unsalvageable) address space is inert — exactly
  // ReHype's "failed VM" outcome, which does not count against recovery.
  const auto dead = [&](DomainId id) {
    for (const DomainId d : ids) {
      if (d == id) return hv.domain(id).crashed();
    }
    return false;  // kDomInvalid / unknown owners are never "dead domains"
  };
  const auto add = [&](Invariant inv, DomainId domain, std::string detail) {
    report.findings.push_back(InvariantFinding{inv, domain, std::move(detail)});
  };

  // 1. Liveness: the flags panic()/report_cpu_hang() latch.
  if (hv.crashed()) add(Invariant::Liveness, kDomInvalid, "hypervisor panicked");
  if (hv.cpu_hung()) add(Invariant::Liveness, kDomInvalid, "CPU0 wedged");

  // 2. Structural audits, grouped by the property they protect. The page
  // tables were walked exactly once (walk_system) and the materialized walk
  // is shared by every structural check instead of re-walking per invariant.
  for (const AuditFinding& f : audit_system(hv, walk).findings) {
    if (dead(f.domain)) continue;
    Invariant inv{};
    switch (f.kind) {
      case FindingKind::GuestWritablePageTable:
      case FindingKind::GuestWritableXenFrame:
        inv = Invariant::FrameTypeSafety;
        break;
      case FindingKind::GuestMapsForeignFrame:
        inv = Invariant::AddressSpaceIsolation;
        break;
      case FindingKind::CorruptIdtGate: inv = Invariant::IdtIntegrity; break;
      case FindingKind::ForeignXenL3Entry: inv = Invariant::XenL3Hygiene; break;
      case FindingKind::ReservedSlotTampered:
        inv = Invariant::ReservedSlotIntegrity;
        break;
      case FindingKind::StaleGrantMapping:
        inv = Invariant::GrantLifecycle;
        break;
    }
    add(inv, f.domain, f.detail);
  }

  // 3. P2M consistency: every populated slot maps an in-range frame the
  // domain actually owns.
  for (const DomainId id : ids) {
    const Domain& dom = hv.domain(id);
    if (dom.crashed()) continue;
    for (std::uint64_t p = 0; p < dom.nr_pages(); ++p) {
      const auto mfn = dom.p2m(sim::Pfn{p});
      if (!mfn) continue;
      if (!hv.memory().contains(*mfn)) {
        add(Invariant::P2mConsistency, id,
            "pfn " + hex(p) + " -> out-of-range mfn " + hex(mfn->raw()));
      } else if (hv.frames().info(*mfn).owner != id) {
        add(Invariant::P2mConsistency, id,
            "pfn " + hex(p) + " -> mfn " + hex(mfn->raw()) + " owned by d" +
                std::to_string(hv.frames().info(*mfn).owner));
      }
    }
  }

  // 4. Frame-table self-consistency (what recovery's rebuild must restore).
  for (std::uint64_t m = 0; m < hv.frames().frame_count(); ++m) {
    const PageInfo& pi = hv.frames().info(sim::Mfn{m});
    if (pi.owner == kDomXen || pi.owner == kDomInvalid || dead(pi.owner)) {
      continue;
    }
    if (pi.type == PageType::None && pi.type_count != 0) {
      add(Invariant::RefcountConsistency, pi.owner,
          "mfn " + hex(m) + " typeless with type_count " +
              std::to_string(pi.type_count));
    }
    if (is_pagetable_type(pi.type) && !pi.validated) {
      add(Invariant::RefcountConsistency, pi.owner,
          "mfn " + hex(m) + " typed " + to_string(pi.type) +
              " but never validated");
    }
    if (pi.ref_count == 0) {
      add(Invariant::RefcountConsistency, pi.owner,
          "allocated mfn " + hex(m) + " with zero existence refs");
    }
  }
  for (const DomainId id : ids) {
    const Domain& dom = hv.domain(id);
    if (dom.crashed()) continue;
    const PageInfo& pi = hv.frames().info(dom.cr3());
    if (pi.owner != id || pi.type != PageType::L4 || !pi.validated) {
      add(Invariant::RefcountConsistency, id,
          "cr3 mfn " + hex(dom.cr3().raw()) + " is not a validated L4 (" +
              to_string(pi.type) + ")");
    }
  }

  if (obs::TraceSink* sink = hv.trace_sink()) {
    for (const InvariantFinding& f : report.findings) {
      sink->emit(obs::TraceCategory::InvariantViolation,
                 f.domain == kDomInvalid ? obs::kNoDomain : f.domain,
                 static_cast<std::uint32_t>(f.invariant));
    }
  }
  return report;
}

// --------------------------------------------------------------- sanitizer

// Clear every page-table entry reachable from the domain's roots that the
// validation engine could never have accepted legitimately, so that the
// subsequent revalidation (get_page_type on the roots) succeeds without
// re-admitting injected state. Two passes: the first fixes each reachable
// table frame's level (first visit wins — matching the DFS order validation
// itself uses), the second drops entries that are malformed, foreign,
// level-conflicting, or writable windows over live table frames.
std::uint64_t Hypervisor::recover_sanitize_tables(
    Domain& dom, const std::vector<std::pair<sim::Mfn, PageType>>& pins) {
  std::map<std::uint64_t, int> seen_level;
  const auto collect = [&](auto&& self, sim::Mfn table, int level) -> void {
    if (!mem_->contains(table)) return;
    if (frames_.info(table).owner != dom.id()) return;
    if (!seen_level.try_emplace(table.raw(), level).second) return;
    if (level == 1) return;
    for (unsigned s = 0; s < sim::kPtEntries; ++s) {
      if (level == 4 && !guest_l4_slot(s)) continue;
      const sim::Pte e{mem_->read_slot(table, s)};
      if (!e.present() || e.large_page() || e.has_reserved_bits()) continue;
      if (!mem_->contains(e.frame())) continue;
      self(self, e.frame(), level - 1);
    }
  };
  collect(collect, dom.cr3(), 4);
  for (const auto& [mfn, type] : pins) {
    if (const auto level = level_of_type(type)) {
      collect(collect, mfn, level_index(*level));
    }
  }

  std::uint64_t cleared = 0;
  std::set<std::uint64_t> visited;
  const auto scrub = [&](auto&& self, sim::Mfn table, int level) -> void {
    if (!visited.insert(table.raw()).second) return;
    for (unsigned s = 0; s < sim::kPtEntries; ++s) {
      // Reserved L4 slots belong to Xen; validate_table() reinstalls them.
      if (level == 4 && !guest_l4_slot(s)) continue;
      const sim::Pte e{mem_->read_slot(table, s)};
      if (!e.present()) continue;
      bool drop = false;
      if (e.has_reserved_bits() || !mem_->contains(e.frame())) {
        drop = true;
      } else if (e.large_page()) {
        // PV guests cannot legitimately create superpages; any PSE entry is
        // XSA-148 fallout granting unchecked machine-contiguous access.
        drop = true;
      } else if (frames_.info(e.frame()).owner != dom.id()) {
        drop = true;  // foreign or Xen-owned frame linked below a guest root
      } else if (level > 1) {
        const auto it = seen_level.find(e.frame().raw());
        if (it == seen_level.end() || it->second != level - 1) {
          drop = true;  // level conflict (includes self/ancestor references)
        } else {
          self(self, e.frame(), level - 1);
        }
      } else {
        // L1 leaf: the shared core-invariant predicate decides. During
        // recovery a frame's "type" is the level the collect pass assigned
        // it (the live types were wiped by the frame reset).
        const auto it = seen_level.find(e.frame().raw());
        const PageType in_use = it == seen_level.end()
                                    ? PageType::None
                                    : pagetable_type_of_level(it->second);
        if (is_writable_pagetable_mapping(e.writable(), in_use)) {
          drop = true;  // writable window over a live page-table frame
        }
      }
      if (drop) {
        mem_->write_slot(table, s, 0);
        ++cleared;
      }
    }
  };
  if (mem_->contains(dom.cr3()) &&
      frames_.info(dom.cr3()).owner == dom.id()) {
    scrub(scrub, dom.cr3(), 4);
  }
  for (const auto& [mfn, type] : pins) {
    const auto level = level_of_type(type);
    if (!level || !mem_->contains(mfn)) continue;
    if (frames_.info(mfn).owner != dom.id()) continue;
    const auto it = seen_level.find(mfn.raw());
    if (it != seen_level.end() && it->second == level_index(*level)) {
      scrub(scrub, mfn, level_index(*level));
    }
  }
  return cleared;
}

// ---------------------------------------------------------------- recover()

namespace {

/// Chaos recover.abort: recovery itself dies at a phase boundary (the
/// micro-reboot machinery is not immune to the corruption it repairs).
/// Occurrence N of the point is the N-th boundary crossed, so a plan like
/// recover.abort@3 deterministically kills recovery between named phases.
/// The throw propagates to the campaign's recover try-block, which records
/// the cell as unrecovered — the same containment as a real recovery bug.
void chaos_phase_boundary(const char* next_phase) {
  if (core::chaos_fire("recover.abort")) {
    throw std::runtime_error{std::string{"chaos: recovery aborted before "} +
                             next_phase};
  }
}

}  // namespace

RecoveryReport Hypervisor::recover() {
  RecoveryReport report;
  // Phase spans nest under whatever span the caller holds open (the
  // campaign's cell/recover). Step counts are the report's own counters —
  // deterministic functions of the corrupted state, never wall time.
  obs::SpanProfiler* const prof = profiler_;
  if (trace_) {
    trace_->emit(obs::TraceCategory::RecoverEnter, obs::kNoDomain,
                 (crashed_ ? 1u : 0u) | (cpu_hung_ ? 2u : 0u));
  }
  {
    obs::ScopedSpan span{prof, obs::kSpanPreAudit};
    report.pre = InvariantAuditor{*this}.audit();
    span.add_steps(report.pre.findings.size());
  }

  chaos_phase_boundary("idt");
  log("(XEN) ReHype: micro-rebooting hypervisor state in place");

  // Capture pin hints (mfn, pre-crash type) per domain before the frame
  // reset wipes the live types; a pin whose type hint is unusable is simply
  // dropped during re-pinning.
  std::map<DomainId, std::vector<std::pair<sim::Mfn, PageType>>> pin_hints;
  for (const auto& [id, dom] : domains_) {
    auto& hints = pin_hints[id];
    for (const sim::Mfn mfn : dom->pinned_tables()) {
      PageType type =
          mem_->contains(mfn) ? frames_.info(mfn).type : PageType::None;
      if (!is_pagetable_type(type)) {
        type = mfn == dom->cr3() ? PageType::L4 : PageType::None;
      }
      hints.emplace_back(mfn, type);
    }
  }

  // 1. Liveness: un-latch the failure flags so validation hypercall paths
  // (and the guests, afterwards) can run again.
  crashed_ = false;
  cpu_hung_ = false;

  // 2. IDT: every gate re-derives from the boot-time handler table.
  {
    obs::ScopedSpan span{prof, obs::kSpanIdt};
    sim::Idt table = idt();
    for (unsigned v = 0; v < sim::kIdtVectors; ++v) {
      const sim::IdtGate gate = table.read(v);
      if (gate.handler != default_handlers_[v] || !gate.well_formed()) {
        ++report.idt_gates_restored;
      }
    }
    install_default_idt();
    span.add_steps(report.idt_gates_restored);
  }

  // 3. Shared Xen L3: only slot 0 (the text L2 link) is ever legitimate;
  // anything else is an injected PUD (the XSA-212 escalation) or garbage.
  for (unsigned s = 1; s < sim::kPtEntries; ++s) {
    if (mem_->read_slot(xen_l3_, s) != 0) {
      mem_->write_slot(xen_l3_, s, 0);
      ++report.xen_l3_entries_cleared;
    }
  }

  chaos_phase_boundary("frame_table");
  // 4. Frame-table rebuild: throw away every guest frame's derived state
  // (type, type refs, validation) and fall back to the allocation ref.
  {
    obs::ScopedSpan span{prof, obs::kSpanFrameTable};
    for (std::uint64_t m = 0; m < frames_.frame_count(); ++m) {
      PageInfo& pi = frames_.info(sim::Mfn{m});
      if (pi.owner == kDomXen || pi.owner == kDomInvalid) continue;
      if (pi.type != PageType::None || pi.type_count != 0 ||
          pi.ref_count != 1 || pi.validated) {
        pi.type = PageType::None;
        pi.type_count = 0;
        pi.ref_count = 1;
        pi.validated = false;
        ++report.frames_retyped;
      }
    }
    span.add_steps(report.frames_retyped);
  }

  chaos_phase_boundary("p2m");
  // 5. P2M reconciliation against frame ownership (the M2P ground truth).
  {
    obs::ScopedSpan span{prof, obs::kSpanP2m};
    for (const auto& [id, dom] : domains_) {
      for (std::uint64_t p = 0; p < dom->nr_pages(); ++p) {
        const sim::Pfn pfn{p};
        const auto mfn = dom->p2m(pfn);
        if (!mfn) continue;
        if (!mem_->contains(*mfn) || frames_.info(*mfn).owner != id) {
          dom->set_p2m(pfn, std::nullopt);
          ++report.p2m_entries_dropped;
        }
      }
    }
    span.add_steps(report.p2m_entries_dropped);
  }

  chaos_phase_boundary("domains");
  // 6. Per-domain: sanitize the tables, then re-derive types and refcounts
  // by re-running the normal validation engine over the cleaned trees.
  obs::ScopedSpan domains_span{prof, obs::kSpanDomains};
  for (const auto& [id, dom] : domains_) {
    const auto& hints = pin_hints[id];
    report.ptes_scrubbed += recover_sanitize_tables(*dom, hints);

    // Rebuild the pin list from scratch so a failed re-pin leaves no
    // dangling type reference for domain destruction to release.
    for (const auto& [mfn, type] : hints) dom->remove_pinned(mfn);
    for (const auto& [mfn, type] : hints) {
      if (!is_pagetable_type(type)) continue;  // unusable hint: drop the pin
      if (get_page_type(*dom, mfn, type) == kOk) dom->add_pinned(mfn);
    }

    // The domain is recoverable iff its paging root revalidates.
    const PageInfo& root = frames_.info(dom->cr3());
    bool root_ok = root.owner == id && root.type == PageType::L4 &&
                   root.validated;
    if (!root_ok && get_page_type(*dom, dom->cr3(), PageType::L4) == kOk) {
      dom->add_pinned(dom->cr3());
      root_ok = true;
    }
    if (!root_ok) {
      dom->mark_crashed();
      report.unrecovered_domains.push_back(id);
      log("(XEN) ReHype: d" + std::to_string(id) +
          " paging root failed revalidation; domain marked crashed");
    }
  }

  domains_span.add_steps(report.ptes_scrubbed);
  domains_span.end();

  chaos_phase_boundary("grants");
  // 7. Grant re-derivation: live mappings hold existence refs; active-v2
  // domains get their status window remapped (a downgraded-but-leaked
  // XSA-387 window stays gone — the sanitizer already dropped it).
  {
    obs::ScopedSpan span{prof, obs::kSpanGrants};
    for (const auto& [handle, mapping] : grants_.mappings()) {
      if (mem_->contains(mapping.frame)) {
        ++frames_.info(mapping.frame).ref_count;
        span.add_steps(1);
      }
    }
    for (const auto& [id, table] : grants_.tables()) {
      if (domains_.find(id) == domains_.end()) continue;
      if (table.version() == 2 && !table.status_frames().empty()) {
        (void)map_grant_status_page(id, table.status_frames().front());
      }
    }
  }

  chaos_phase_boundary("post_audit");
  {
    obs::ScopedSpan span{prof, obs::kSpanPostAudit};
    report.post = InvariantAuditor{*this}.audit();
    span.add_steps(report.post.findings.size());
  }
  if (trace_) {
    trace_->emit(obs::TraceCategory::RecoverExit, obs::kNoDomain,
                 static_cast<std::uint32_t>(report.unrecovered_domains.size()),
                 report.succeeded() ? 0 : -1);
  }
  log("(XEN) ReHype: recovery " +
      std::string(report.succeeded() ? "complete" : "INCOMPLETE") + " (" +
      std::to_string(report.pre.findings.size()) + " finding(s) before, " +
      std::to_string(report.post.findings.size()) + " after; " +
      std::to_string(report.idt_gates_restored) + " IDT gate(s), " +
      std::to_string(report.xen_l3_entries_cleared) + " xen-L3 slot(s), " +
      std::to_string(report.frames_retyped) + " frame(s) retyped, " +
      std::to_string(report.ptes_scrubbed) + " PTE(s) scrubbed)");
  return report;
}

}  // namespace ii::hv
