// Hypercall status codes, mirroring Xen's errno-style returns.
//
// The experiments key on these: the paper reports the real exploits failing
// on fixed versions "with a return code of -EFAULT (bad address return
// code)", so tests assert exact codes.
#pragma once

namespace ii::hv {

inline constexpr long kOk = 0;
inline constexpr long kEPERM = -1;    ///< operation not permitted
inline constexpr long kENOENT = -2;   ///< no such object
inline constexpr long kEFAULT = -14;  ///< bad address
inline constexpr long kEBUSY = -16;   ///< object in use (type/ref conflict)
inline constexpr long kEINVAL = -22;  ///< invalid argument
inline constexpr long kENOMEM = -12;  ///< out of memory
inline constexpr long kENOSYS = -38;  ///< hypercall not implemented

/// Short symbolic name ("-EFAULT") for logs and reports.
[[nodiscard]] constexpr const char* errno_name(long code) {
  switch (code) {
    case kOk: return "0";
    case kEPERM: return "-EPERM";
    case kENOENT: return "-ENOENT";
    case kEFAULT: return "-EFAULT";
    case kEBUSY: return "-EBUSY";
    case kEINVAL: return "-EINVAL";
    case kENOMEM: return "-ENOMEM";
    case kENOSYS: return "-ENOSYS";
    default: return "-E?";
  }
}

}  // namespace ii::hv
