// Page-table and IDT auditing.
//
// The paper's experiments verify injected erroneous states by *auditing* the
// live system ("a page-table walk to audit the same erroneous state was
// performed", §VI-C). This module provides that capability: enumerate every
// guest-reachable leaf mapping, check the direct-paging safety invariants,
// and diff the IDT against the boot-time handlers. The ii::core monitors
// build their erroneous-state verdicts on top of these reports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hv/hypervisor.hpp"

namespace ii::hv {

/// One leaf mapping discovered by a full table walk.
struct LeafMapping {
  sim::Vaddr va{};          ///< first virtual address of the run
  sim::Mfn mfn{};           ///< first machine frame mapped
  std::uint64_t bytes = 0;  ///< 4 KiB or 2 MiB
  bool writable = false;    ///< cumulative RW along the walk
  bool user = false;        ///< cumulative US along the walk
};

/// Invoke `fn` for every present leaf reachable from the L4 table `root`.
/// Self-referencing entries are followed exactly as the hardware would
/// (depth-limited by the 4 walk levels), so linear/self maps show up as
/// leaves pointing at table frames.
void for_each_leaf(const Hypervisor& hv, sim::Mfn root,
                   const std::function<void(const LeafMapping&)>& fn);

/// Materialized walk: every leaf reachable from `root`, in walk order.
[[nodiscard]] std::vector<LeafMapping> collect_leaves(const Hypervisor& hv,
                                                      sim::Mfn root);

/// The user-reachable leaf mappings of one domain's current address space.
/// Supervisor-only leaves (Xen text, the private directmap) are not
/// materialized: every consumer filters them out, and the directmap alone
/// contributes one leaf per machine frame.
struct DomainWalk {
  DomainId domain = kDomInvalid;
  std::vector<LeafMapping> leaves;
};

/// One page-table walk over every live domain, materialized. Built once per
/// audit and shared by every invariant check (and by the model checker's
/// erroneous-state classifiers), so the tables are traversed exactly once
/// and all consumers agree on what was reachable.
using SystemWalk = std::vector<DomainWalk>;

[[nodiscard]] SystemWalk walk_system(const Hypervisor& hv);

/// Classes of invariant violations the auditor recognizes.
enum class FindingKind {
  GuestWritablePageTable,  ///< a user-writable mapping covers a PT frame
  GuestWritableXenFrame,   ///< a user-writable mapping covers a Xen frame
  GuestMapsForeignFrame,   ///< a user mapping covers another domain's frame
  CorruptIdtGate,          ///< an IDT gate no longer matches boot state
  ForeignXenL3Entry,       ///< a non-Xen entry linked into the shared Xen L3
  ReservedSlotTampered,    ///< guest L4 reserved slot deviates from Xen's
  StaleGrantMapping,       ///< grant-status frame reachable after downgrade
};

[[nodiscard]] std::string to_string(FindingKind kind);

struct AuditFinding {
  FindingKind kind{};
  DomainId domain = kDomInvalid;  ///< domain whose tables exposed it (if any)
  std::string detail;
};

struct AuditReport {
  std::vector<AuditFinding> findings;
  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] bool has(FindingKind kind) const {
    for (const auto& f : findings)
      if (f.kind == kind) return true;
    return false;
  }
};

/// Run every audit over the whole platform (walks the tables itself).
[[nodiscard]] AuditReport audit_system(const Hypervisor& hv);

/// Same audits over a walk the caller already materialized — the hoisted
/// form every repeated consumer (InvariantAuditor, model checker) uses.
[[nodiscard]] AuditReport audit_system(const Hypervisor& hv,
                                       const SystemWalk& walk);

}  // namespace ii::hv
