// Numbered hypercall dispatch — the "hypercalls table".
//
// Paper §V-B: "Although the core of the injector is the same, small changes
// in the hypercalls table had to be done to add the new hypercall into the
// code base for each version (due to small architectural differences
// between versions)." This layer models that surface: Xen's classic
// hypercall numbers dispatch through a per-version table, and the
// HYPERVISOR_arbitrary_access patch occupies a *different vacant slot on
// each release* — so injection tooling must resolve the number per version,
// exactly as the real prototype had to.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "hv/abi.hpp"
#include "hv/grant_table.hpp"
#include "hv/version.hpp"

namespace ii::hv {

class Hypervisor;

// Classic Xen hypercall numbers (the stable subset this model serves).
inline constexpr unsigned kHcSetTrapTable = 0;
inline constexpr unsigned kHcMmuUpdate = 1;
inline constexpr unsigned kHcUpdateVaMapping = 3;
inline constexpr unsigned kHcMemoryOp = 12;      // exchange/balloon sub-ops
inline constexpr unsigned kHcConsoleIo = 18;
inline constexpr unsigned kHcGrantTableOp = 20;
inline constexpr unsigned kHcMmuExtOp = 23;
inline constexpr unsigned kHcSchedOp = 26;
inline constexpr unsigned kHcEventChannelOp = 29;
inline constexpr unsigned kHcDomctl = 36;

/// XENMEM_* sub-commands of kHcMemoryOp.
enum class MemoryOpCmd { Exchange, DecreaseReservation, PopulatePhysmap };

/// Where each release's patched build parks HYPERVISOR_arbitrary_access
/// (a vacant table slot; the "small architectural differences").
[[nodiscard]] unsigned arbitrary_access_nr(XenVersion version);

// ---------------------------------------------------------------- payloads

struct MmuUpdateCall {
  std::span<const MmuUpdate> requests;
  unsigned* done = nullptr;
};

struct UpdateVaMappingCall {
  sim::Vaddr va{};
  sim::Pte val{};
};

struct MemoryOpCall {
  MemoryOpCmd cmd{};
  MemoryExchange* exchange = nullptr;  // Exchange
  sim::Pfn pfn{};                      // balloon ops
};

struct SetTrapTableCall {
  std::span<const TrapInfo> traps;
};

struct ConsoleIoCall {
  std::string line;
};

struct SchedOpCall {
  ShutdownReason reason{};
};

struct DomctlCall {
  DomainId victim{};
};

struct GrantTableOpCall {
  enum class Op { SetVersion, GrantAccess, EndAccess, Map, Unmap } op{};
  unsigned version = 1;
  GrantRef ref = 0;
  DomainId peer = kDomInvalid;
  sim::Pfn pfn{};
  bool readonly = false;
  GrantHandle handle = 0;
  GrantHandle* out_handle = nullptr;
  sim::Mfn* out_frame = nullptr;
};

struct EventChannelOpCall {
  enum class Op { AllocUnbound, BindInterdomain, Send } op{};
  DomainId remote = kDomInvalid;
  unsigned port = 0;
  unsigned* out_port = nullptr;
};

struct ArbitraryAccessCall {
  ArbitraryAccess request;
};

/// The union of everything a numbered hypercall can carry.
using HypercallPayload =
    std::variant<MmuUpdateCall, UpdateVaMappingCall, MemoryOpCall,
                 SetTrapTableCall, ConsoleIoCall, SchedOpCall, DomctlCall,
                 GrantTableOpCall, MmuExtOp, EventChannelOpCall,
                 ArbitraryAccessCall>;

/// Dispatch `payload` through `hv`'s hypercall table at slot `nr`.
/// Returns -ENOSYS for vacant slots and for number/payload mismatches
/// (calling a slot with the wrong structure is a guest bug, reported the
/// way real Xen reports bad hypercalls rather than asserted).
///
/// This is the tracing boundary: when a sink is attached to `hv`, every
/// dispatch emits exactly one HypercallEnter and one HypercallExit (with
/// the return status) around the table lookup, and bumps the sink's per-nr
/// counter — the xentrace TRC_HYPERCALL analogue.
[[nodiscard]] long dispatch_hypercall(Hypervisor& hv, DomainId caller,
                                      unsigned nr, HypercallPayload& payload);

}  // namespace ii::hv
