#include "hv/version.hpp"

namespace ii::hv {

VersionPolicy VersionPolicy::for_version(XenVersion v) {
  VersionPolicy p{};
  p.version = v;
  const bool is46 = v <= kXen46;
  const bool pre49 = v < XenVersion{4, 9};
  const bool pre413 = v < kXen413;

  p.xsa212_unchecked_exchange_output = is46;
  p.xsa148_l2_pse_unvalidated = is46;
  p.xsa182_l4_fastpath_unvalidated = is46;
  p.guest_linear_alias_present = pre49;
  p.strict_reserved_slot_check = !pre49;
  p.grant_v2_status_leak = pre413;
  p.evtchn_requeue_unbound = pre413;
  p.scrub_on_destroy = !pre413;
  p.fdc_unbounded_fifo = is46;
  p.dm_handler_integrity_check = !pre413;
  return p;
}

}  // namespace ii::hv
