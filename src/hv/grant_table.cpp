#include "hv/grant_table.hpp"

#include <cstring>

#include "hv/errors.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {

const GrantTable* GrantOps::find_table(DomainId domain) const {
  auto it = tables_.find(domain);
  return it == tables_.end() ? nullptr : &it->second;
}

long GrantOps::grant_access(DomainId caller, GrantRef ref, DomainId peer,
                            sim::Pfn pfn, bool readonly) {
  if (ref >= GrantTable::kMaxEntries) return kEINVAL;
  Domain& dom = hv_->domain(caller);
  const auto mfn = dom.p2m(pfn);
  if (!mfn) return kEINVAL;
  GrantTable& table = table_of(caller);
  GrantEntry& entry = table.entries_[ref];
  if (entry.in_use) return kEBUSY;
  entry = GrantEntry{peer, pfn, readonly, /*in_use=*/true, /*maps=*/0};
  return kOk;
}

long GrantOps::end_access(DomainId caller, GrantRef ref) {
  if (ref >= GrantTable::kMaxEntries) return kEINVAL;
  GrantTable& table = table_of(caller);
  GrantEntry& entry = table.entries_[ref];
  if (!entry.in_use) return kENOENT;
  if (entry.maps != 0) return kEBUSY;  // peer still holds mappings
  entry = GrantEntry{};
  return kOk;
}

long GrantOps::map_grant(DomainId caller, DomainId granter, GrantRef ref,
                         GrantHandle* handle, sim::Mfn* frame) {
  if (ref >= GrantTable::kMaxEntries) return kEINVAL;
  auto it = tables_.find(granter);
  if (it == tables_.end()) return kENOENT;
  GrantEntry& entry = it->second.entries_[ref];
  if (!entry.in_use || entry.peer != caller) return kEPERM;
  const auto mfn = hv_->domain(granter).p2m(entry.pfn);
  if (!mfn) return kEINVAL;

  ++entry.maps;
  ++hv_->frames().info(*mfn).ref_count;  // existence ref for the mapping
  const GrantHandle h = next_handle_++;
  mappings_.emplace(
      h, GrantMapping{caller, granter, ref, *mfn, entry.readonly});
  if (handle) *handle = h;
  if (frame) *frame = *mfn;
  return kOk;
}

long GrantOps::unmap_grant(DomainId caller, GrantHandle handle) {
  auto it = mappings_.find(handle);
  if (it == mappings_.end()) return kENOENT;
  if (it->second.mapper != caller) return kEPERM;
  const GrantMapping mapping = it->second;
  mappings_.erase(it);

  auto granter_table = tables_.find(mapping.granter);
  if (granter_table != tables_.end()) {
    GrantEntry& entry = granter_table->second.entries_[mapping.ref];
    if (entry.maps > 0) --entry.maps;
  }
  PageInfo& pi = hv_->frames().info(mapping.frame);
  if (pi.ref_count > 1) --pi.ref_count;
  return kOk;
}

long GrantOps::set_version(DomainId caller, unsigned version) {
  if (version != 1 && version != 2) return kEINVAL;
  GrantTable& table = table_of(caller);
  if (table.version_ == version) return kOk;

  if (version == 2) {
    // Upgrade: allocate a Xen-owned status frame (once) and expose it to
    // the guest — our stand-in for mapping the v2 status pages.
    if (table.status_frames_.empty()) {
      const auto frame = hv_->frames().alloc(kDomXen);
      if (!frame) return kENOMEM;
      hv_->frames().info(*frame).type = PageType::GrantStatus;
      hv_->memory().zero_frame(*frame);
      // Identifiable Xen-internal content, so a retained mapping is a
      // demonstrable confidentiality breach.
      const char secret[] = "XEN-INTERNAL grant status";
      hv_->memory().write(sim::mfn_to_paddr(*frame),
                          {reinterpret_cast<const std::uint8_t*>(secret),
                           sizeof secret});
      table.status_frames_.push_back(*frame);
    }
    const long rc = hv_->map_grant_status_page(caller,
                                               table.status_frames_[0]);
    if (rc != kOk) return rc;
    table.version_ = 2;
    if (CoverageHook* cov = hv_->coverage_hook()) {
      cov->on_branch(ValidationBranch::GrantStatusMapped,
                     PageType::GrantStatus);
    }
    return kOk;
  }

  // Downgrade to v1: the status pages "should be released to Xen when a
  // guest switches from grant table v2 to v1" (paper §IV-B, XSA-387).
  table.version_ = 1;
  if (hv_->policy().grant_v2_status_leak) {
    // The modelled bug: skip the release; the guest keeps its mapping of a
    // Xen-owned page (abusive functionality: Keep Page Access).
    if (CoverageHook* cov = hv_->coverage_hook()) {
      cov->on_branch(ValidationBranch::GrantDowngradeLeak,
                     PageType::GrantStatus);
    }
    return kOk;
  }
  if (CoverageHook* cov = hv_->coverage_hook()) {
    cov->on_branch(ValidationBranch::GrantDowngradeClean,
                   PageType::GrantStatus);
  }
  return hv_->unmap_grant_status_page(caller);
}

bool GrantOps::has_foreign_mappings_of(DomainId granter) const {
  for (const auto& [handle, mapping] : mappings_) {
    if (mapping.granter == granter && mapping.mapper != granter) return true;
  }
  return false;
}

void GrantOps::domain_destroyed(DomainId domain) {
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    if (it->second.mapper == domain) {
      const GrantHandle handle = it->first;
      ++it;  // unmap_grant erases; keep the iterator valid
      (void)unmap_grant(domain, handle);
    } else {
      ++it;
    }
  }
  tables_.erase(domain);
}

std::vector<sim::Mfn> GrantOps::reachable_frames(DomainId domain) const {
  std::vector<sim::Mfn> out;
  for (const auto& [handle, mapping] : mappings_) {
    if (mapping.mapper == domain) out.push_back(mapping.frame);
  }
  return out;
}

}  // namespace ii::hv
