// Event channels: Xen's virtual-interrupt mechanism.
//
// Why this substrate exists here: Table I's Non-Memory class ("Induce a
// Hang State", "Uncontrolled Arbitrary Interrupts Requests") and the
// paper's §IX-C plan of "expanding our prototype to cover IMs related with
// malicious interrupts" both target interrupt machinery — which in Xen is
// *memory-backed*: pending/mask bits live in the guest's shared_info page.
// That makes interrupt-state intrusions injectable with the same
// arbitrary-access hypercall as the memory use cases.
//
// The model: 512 ports per domain; pending and mask bitmaps in the
// shared_info page (guest pseudo-physical page kSharedInfoPfn); an
// interdomain bind/send path; and the hypervisor-side delivery loop whose
// pre-4.13 behaviour re-queues events for ports without a registered
// handler — the modelled availability weakness that turns an injected
// pending-bit storm into a livelocked CPU.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "hv/frame_table.hpp"

namespace ii::hv {

class Hypervisor;

/// Layout of event state inside the shared_info page.
struct SharedInfoLayout {
  static constexpr unsigned kPorts = 512;
  static constexpr std::uint64_t kPendingOffset = 0x000;  ///< 8 u64 words
  static constexpr std::uint64_t kMaskOffset = 0x040;     ///< 8 u64 words
};

class EventChannelOps {
 public:
  explicit EventChannelOps(Hypervisor& hv) : hv_{&hv} {}

  /// EVTCHNOP_alloc_unbound: reserve a local port that `remote` may bind.
  long alloc_unbound(DomainId owner, DomainId remote, unsigned* port);

  /// EVTCHNOP_bind_interdomain: connect a fresh local port to the remote's
  /// unbound port.
  long bind_interdomain(DomainId caller, DomainId remote,
                        unsigned remote_port, unsigned* local_port);

  /// EVTCHNOP_send: raise the event on the peer end of a bound port — sets
  /// the peer's pending bit in its shared_info page.
  long send(DomainId caller, unsigned port);

  /// Guest-side: register an upcall handler for a local port.
  long register_handler(DomainId domain, unsigned port);

  /// Guest-side: mask/unmask a port (writes the shared_info mask bit).
  long set_mask(DomainId domain, unsigned port, bool masked);

  [[nodiscard]] bool pending(DomainId domain, unsigned port) const;

  /// Hypervisor delivery loop for one domain. Clears pending bits of
  /// handled ports and invokes nothing (delivery is counted, not executed).
  /// Ports with no handler: dropped on hardened versions, re-queued on
  /// older ones — where a storm of injected bits livelocks the loop and
  /// wedges the CPU (hv.cpu_hung()).
  struct DispatchResult {
    unsigned delivered = 0;
    unsigned dropped = 0;
    bool livelocked = false;
  };
  DispatchResult dispatch(DomainId domain, unsigned max_passes = 8);

  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }

  /// Domain teardown: drop its ports and unbind any peers.
  void domain_destroyed(DomainId domain);

  /// One event-channel port's hypervisor-side state.
  struct Port {
    bool allocated = false;
    DomainId remote = kDomInvalid;  ///< allowed binder while unbound
    bool bound = false;
    DomainId peer_domain = kDomInvalid;
    unsigned peer_port = 0;
  };

  /// Complete port/handler state for hv/snapshot.hpp (pending/mask bits
  /// live in guest memory and are captured with the memory image).
  struct State {
    std::map<DomainId, std::map<unsigned, Port>> ports;
    std::set<std::pair<DomainId, unsigned>> handlers;
    std::map<DomainId, unsigned> next_port;
    std::uint64_t total_sent = 0;
  };
  [[nodiscard]] State state() const {
    return State{ports_, handlers_, next_port_, total_sent_};
  }
  void restore(State state) {
    ports_ = std::move(state.ports);
    handlers_ = std::move(state.handlers);
    next_port_ = std::move(state.next_port);
    total_sent_ = state.total_sent;
  }

 private:
  [[nodiscard]] sim::Paddr shared_info_of(DomainId domain) const;
  void set_pending_bit(DomainId domain, unsigned port);

  Hypervisor* hv_;
  std::map<DomainId, std::map<unsigned, Port>> ports_;
  std::set<std::pair<DomainId, unsigned>> handlers_;
  std::map<DomainId, unsigned> next_port_;
  std::uint64_t total_sent_ = 0;
};

}  // namespace ii::hv
