// Grant tables: Xen's controlled page-sharing mechanism, v1 and v2.
//
// Why this substrate exists in an intrusion-injection reproduction: the
// paper's §IV-B derives its intrusion-model discussion from two grant-table
// advisories — XSA-387 (v2 status pages not released on downgrade to v1)
// and XSA-393 — whose common abusive functionality is *Keep Page Access*:
// "a malicious guest can retain access to Xen pages even after they are
// used for other purposes". This module implements enough of the grant ABI
// to host that model: per-domain grant entries, map/unmap by peers with
// frame reference accounting, the v2 status frames, and the version-switch
// path whose missing release is the modelled bug.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hv/frame_table.hpp"

namespace ii::hv {

class Hypervisor;

using GrantRef = std::uint32_t;
using GrantHandle = std::uint32_t;

/// One grant entry: `owner` permits `peer` to map `pfn`.
struct GrantEntry {
  DomainId peer = kDomInvalid;
  sim::Pfn pfn{};
  bool readonly = false;
  bool in_use = false;   ///< granted and not yet revoked
  std::uint32_t maps = 0;  ///< live mappings by the peer
};

/// A live mapping created by grant_map.
struct GrantMapping {
  DomainId mapper = kDomInvalid;
  DomainId granter = kDomInvalid;
  GrantRef ref = 0;
  sim::Mfn frame{};
  bool readonly = false;
};

/// Per-domain grant-table state.
class GrantTable {
 public:
  static constexpr std::uint32_t kMaxEntries = 64;

  [[nodiscard]] unsigned version() const { return version_; }
  [[nodiscard]] const std::vector<GrantEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::vector<sim::Mfn>& status_frames() const {
    return status_frames_;
  }

 private:
  friend class GrantOps;
  unsigned version_ = 1;
  std::vector<GrantEntry> entries_{kMaxEntries};
  /// v2 only: Xen-owned frames holding grant status words, mapped into the
  /// guest while v2 is active.
  std::vector<sim::Mfn> status_frames_;
};

/// The grant hypercall surface. Owns all grant state; the Hypervisor
/// forwards HYPERVISOR_grant_table_op here.
class GrantOps {
 public:
  explicit GrantOps(Hypervisor& hv) : hv_{&hv} {}

  /// GNTTABOP_setup_table-ish: ensure a table exists for the domain.
  GrantTable& table_of(DomainId domain) { return tables_[domain]; }
  [[nodiscard]] const GrantTable* find_table(DomainId domain) const;

  /// Grant `peer` access to `pfn`. Returns the grant reference.
  long grant_access(DomainId caller, GrantRef ref, DomainId peer,
                    sim::Pfn pfn, bool readonly);

  /// Revoke a grant. Fails with -EBUSY while the peer still maps it.
  long end_access(DomainId caller, GrantRef ref);

  /// GNTTABOP_map_grant_ref: the peer maps the granted frame. On success
  /// `*handle` identifies the mapping and `*frame` the machine frame.
  long map_grant(DomainId caller, DomainId granter, GrantRef ref,
                 GrantHandle* handle, sim::Mfn* frame);

  /// GNTTABOP_unmap_grant_ref.
  long unmap_grant(DomainId caller, GrantHandle handle);

  /// GNTTABOP_set_version: switch between grant v1 and v2. Upgrading to v2
  /// allocates Xen-owned status frames and maps them to the guest;
  /// downgrading must release them — XSA-387's bug is skipping that release
  /// (policy.grant_v2_status_leak).
  long set_version(DomainId caller, unsigned version);

  /// Frames the domain can still reach through grant machinery: live grant
  /// mappings plus any status frames mapped to it. Used by audits: after a
  /// clean downgrade this must not contain Xen-owned frames.
  [[nodiscard]] std::vector<sim::Mfn> reachable_frames(DomainId domain) const;

  /// True while other domains hold live mappings of `granter`'s pages —
  /// what blocks domain destruction with -EBUSY.
  [[nodiscard]] bool has_foreign_mappings_of(DomainId granter) const;

  /// Domain teardown: release every mapping the domain holds and drop its
  /// table state.
  void domain_destroyed(DomainId domain);

  [[nodiscard]] const std::map<GrantHandle, GrantMapping>& mappings() const {
    return mappings_;
  }

  /// Every per-domain grant table (recovery re-derives the status-page
  /// windows and mapping refcounts from these).
  [[nodiscard]] const std::map<DomainId, GrantTable>& tables() const {
    return tables_;
  }

  /// Complete grant state for hv/snapshot.hpp. GrantTable, GrantEntry and
  /// GrantMapping are plain values, so copying the maps captures everything
  /// — including the handle counter, which is guest-visible (a restored
  /// state must hand out the same handles the original would).
  struct State {
    std::map<DomainId, GrantTable> tables;
    std::map<GrantHandle, GrantMapping> mappings;
    GrantHandle next_handle = 1;
  };
  [[nodiscard]] State state() const {
    return State{tables_, mappings_, next_handle_};
  }
  void restore(State state) {
    tables_ = std::move(state.tables);
    mappings_ = std::move(state.mappings);
    next_handle_ = state.next_handle;
  }

 private:
  Hypervisor* hv_;
  std::map<DomainId, GrantTable> tables_;
  std::map<GrantHandle, GrantMapping> mappings_;
  GrantHandle next_handle_ = 1;
};

}  // namespace ii::hv
