#include "hv/frame_table.hpp"

#include <stdexcept>

namespace ii::hv {

std::string to_string(PageType type) {
  switch (type) {
    case PageType::None: return "none";
    case PageType::L1: return "l1_pagetable";
    case PageType::L2: return "l2_pagetable";
    case PageType::L3: return "l3_pagetable";
    case PageType::L4: return "l4_pagetable";
    case PageType::Writable: return "writable";
    case PageType::SegDesc: return "seg_descriptor";
    case PageType::GrantStatus: return "grant_status";
    case PageType::XenHeap: return "xen_heap";
  }
  return "invalid";
}

FrameTable::FrameTable(std::uint64_t frames) : info_(frames) {
  if (frames == 0) throw std::invalid_argument{"FrameTable: zero frames"};
}

PageInfo& FrameTable::info(sim::Mfn mfn) {
  return info_.at(mfn.raw());
}

const PageInfo& FrameTable::info(sim::Mfn mfn) const {
  return info_.at(mfn.raw());
}

std::optional<sim::Mfn> FrameTable::alloc(DomainId owner) {
  // Prefer never-allocated frames (sequential MFNs), falling back to the
  // FIFO free list once the machine fills up. Sequential allocation is the
  // predictability the XSA-212 exploit's value grooming banks on.
  std::uint64_t raw;
  if (bump_ < info_.size()) {
    raw = bump_++;
  } else if (!free_list_.empty()) {
    raw = free_list_.front();
    free_list_.pop_front();
  } else {
    return std::nullopt;
  }
  PageInfo& pi = info_[raw];
  pi = PageInfo{};
  pi.owner = owner;
  pi.ref_count = 1;
  return sim::Mfn{raw};
}

std::optional<sim::Mfn> FrameTable::alloc_prefer_recycled(DomainId owner) {
  std::uint64_t raw;
  if (!free_list_.empty()) {
    raw = free_list_.front();
    free_list_.pop_front();
  } else if (bump_ < info_.size()) {
    raw = bump_++;
  } else {
    return std::nullopt;
  }
  PageInfo& pi = info_[raw];
  pi = PageInfo{};
  pi.owner = owner;
  pi.ref_count = 1;
  return sim::Mfn{raw};
}

std::optional<sim::Mfn> FrameTable::alloc_contiguous(DomainId owner,
                                                     std::uint64_t count) {
  if (count == 0) return std::nullopt;
  // Contiguous runs only come from the never-allocated bump region; the
  // FIFO list is for single-frame churn.
  if (bump_ + count > info_.size()) return std::nullopt;
  const std::uint64_t start = bump_;
  bump_ += count;
  for (std::uint64_t i = 0; i < count; ++i) {
    PageInfo& pi = info_[start + i];
    pi = PageInfo{};
    pi.owner = owner;
    pi.ref_count = 1;
  }
  return sim::Mfn{start};
}

void FrameTable::free(sim::Mfn mfn) {
  PageInfo& pi = info(mfn);
  if (pi.owner == kDomInvalid) throw std::logic_error{"double free of frame"};
  if (pi.ref_count != 1 || pi.type_count != 0) {
    throw std::logic_error{"freeing frame with live references"};
  }
  pi = PageInfo{};
  free_list_.push_back(mfn.raw());
}

std::vector<sim::Mfn> FrameTable::frames_of(DomainId owner) const {
  std::vector<sim::Mfn> out;
  for (std::uint64_t i = 0; i < info_.size(); ++i) {
    if (info_[i].owner == owner) out.push_back(sim::Mfn{i});
  }
  return out;
}

std::uint64_t FrameTable::free_frames() const {
  return free_list_.size() + (info_.size() - bump_);
}

}  // namespace ii::hv
