// Direct-paging validation engine and memory hypercalls.
//
// This file is where the paper's three use-case vulnerabilities live, each
// behind its VersionPolicy knob and marked with an `XSA-...` comment at the
// exact check it removes:
//
//   XSA-148: validate_entry_target() L2/PSE handling
//   XSA-182: validate_and_write_entry() L4 linear-slot fast path
//   XSA-212: hypercall_memory_exchange() output-pointer check
//
// Everything else implements the *correct* behaviour those checks protect:
// the page-type system guaranteeing that no frame is simultaneously a
// validated page table and writable by a guest.
#include <algorithm>
#include <vector>

#include "hv/hypervisor.hpp"

namespace ii::hv {

namespace {

/// Guest-controllable L4 slots: everything outside the Xen-reserved window.
bool guest_l4_slot(unsigned index) {
  return index < kXenFirstReservedSlot || index > kXenLastReservedSlot;
}

}  // namespace

PageType Hypervisor::table_type_of(sim::PtLevel level) const {
  switch (level) {
    case sim::PtLevel::L1: return PageType::L1;
    case sim::PtLevel::L2: return PageType::L2;
    case sim::PtLevel::L3: return PageType::L3;
    case sim::PtLevel::L4: return PageType::L4;
  }
  return PageType::None;
}

std::optional<sim::PtLevel> Hypervisor::level_of_type(PageType t) const {
  switch (t) {
    case PageType::L1: return sim::PtLevel::L1;
    case PageType::L2: return sim::PtLevel::L2;
    case PageType::L3: return sim::PtLevel::L3;
    case PageType::L4: return sim::PtLevel::L4;
    default: return std::nullopt;
  }
}

// ----------------------------------------------------------- type machinery

long Hypervisor::get_page_type(Domain& caller, sim::Mfn mfn, PageType wanted) {
  const long rc = get_page_type_impl(caller, mfn, wanted);
  if (trace_) {
    trace_->emit(obs::TraceCategory::PageTypeGet, caller.id(),
                 static_cast<std::uint32_t>(wanted), rc, mfn.raw());
  }
  return rc;
}

long Hypervisor::get_page_type_impl(Domain& caller, sim::Mfn mfn,
                                    PageType wanted) {
  if (!mem_->contains(mfn)) return kEINVAL;
  PageInfo& pi = frames_.info(mfn);
  if (pi.owner != caller.id()) return kEPERM;

  if (wanted == PageType::Writable) {
    if (pi.type == PageType::Writable) {
      ++pi.type_count;
      cover(ValidationBranch::TypeWritableOk, PageType::Writable);
      return kOk;
    }
    if (pi.type == PageType::None) {
      pi.type = PageType::Writable;
      pi.type_count = 1;
      pi.validated = true;
      cover(ValidationBranch::TypeWritableOk, PageType::None);
      return kOk;
    }
    // The core protection: page-table (and descriptor) pages must never
    // become guest-writable.
    cover(ValidationBranch::TypeWritableBusy, pi.type);
    return kEBUSY;
  }

  if (is_pagetable_type(wanted)) {
    if (pi.type == wanted && pi.validated) {
      ++pi.type_count;
      cover(ValidationBranch::TypeTableRef, pi.type);
      return kOk;
    }
    if (pi.type != PageType::None) {
      cover(ValidationBranch::TypeTableBusy, pi.type);
      return kEBUSY;
    }
    const long rc = validate_table(caller, mfn, *level_of_type(wanted));
    if (rc != kOk) {
      cover(ValidationBranch::TypeTableRejected, wanted);
      return rc;
    }
    pi.type = wanted;
    pi.type_count = 1;
    pi.validated = true;
    cover(ValidationBranch::TypeTableValidated, wanted);
    return kOk;
  }
  return kEINVAL;
}

void Hypervisor::put_page_type(sim::Mfn mfn) {
  PageInfo& pi = frames_.info(mfn);
  if (pi.type_count == 0) return;  // defensive: never underflow
  if (trace_) {
    trace_->emit(obs::TraceCategory::PageTypePut, obs::kNoDomain,
                 static_cast<std::uint32_t>(pi.type), 0, mfn.raw());
  }
  if (--pi.type_count == 0) {
    if (is_pagetable_type(pi.type)) invalidate_table(mfn);
    pi.type = PageType::None;
    pi.validated = false;
  }
}

void Hypervisor::invalidate_table(sim::Mfn mfn) {
  const PageInfo& pi = frames_.info(mfn);
  const auto level = level_of_type(pi.type);
  if (!level) return;
  const unsigned first = 0, last = sim::kPtEntries;
  for (unsigned i = first; i < last; ++i) {
    if (*level == sim::PtLevel::L4 && !guest_l4_slot(i)) continue;
    const sim::Pte e{mem_->read_slot(mfn, i)};
    if (!e.present()) continue;
    if (!mem_->contains(e.frame())) continue;
    if (*level == sim::PtLevel::L1) {
      if (e.writable()) {
        put_page_type(e.frame());
      } else {
        PageInfo& ti = frames_.info(e.frame());
        if (ti.ref_count > 1) --ti.ref_count;
      }
    } else if (!e.large_page()) {
      put_page_type(e.frame());
    }
    // PSE entries (only possible via XSA-148) acquired no references.
  }
}

long Hypervisor::validate_entry_target(Domain& caller, sim::PtLevel level,
                                       sim::Pte entry) {
  if (!entry.present()) {
    cover(ValidationBranch::EntryNonPresent);
    return kOk;
  }
  if (entry.has_reserved_bits()) {
    cover(ValidationBranch::EntryReservedBits);
    return kEINVAL;
  }
  const sim::Mfn target = entry.frame();
  if (!mem_->contains(target)) {
    cover(ValidationBranch::EntryBadFrame);
    return kEINVAL;
  }

  if (entry.large_page() && level != sim::PtLevel::L1) {
    if (level == sim::PtLevel::L2) {
      // XSA-148: the vulnerable L2 validation ignores the PSE bit, so the
      // entry is accepted as-is — handing the guest a writable 2 MiB
      // machine-contiguous window with no ownership or type checks at all.
      if (policy_.xsa148_l2_pse_unvalidated) {
        cover(ValidationBranch::Xsa148PseAccepted, frames_.info(target).type);
        return kOk;
      }
      cover(ValidationBranch::PseRejected);
      return kEINVAL;  // fixed versions: PV guests may not create superpages
    }
    cover(ValidationBranch::PseRejected);
    return kEINVAL;  // no 1 GiB guest pages at L3, PSE invalid at L4
  }

  const PageInfo& ti = frames_.info(target);
  if (ti.owner != caller.id()) {
    cover(ValidationBranch::EntryForeignFrame, ti.type);
    return kEPERM;
  }

  if (level == sim::PtLevel::L1) {
    if (entry.writable()) {
      cover(ValidationBranch::L1Writable, ti.type);
      return get_page_type(caller, target, PageType::Writable);
    }
    // Read-only mappings of anything the caller owns (including its own
    // page tables) are legitimate; take a plain existence reference.
    cover(ValidationBranch::L1ReadOnlyRef, ti.type);
    ++frames_.info(target).ref_count;
    return kOk;
  }

  // Intermediate entries link child tables; the child must validate.
  cover(ValidationBranch::IntermediateLink, ti.type);
  const sim::PtLevel child =
      static_cast<sim::PtLevel>(level_index(level) - 1);
  return get_page_type(caller, target, table_type_of(child));
}

long Hypervisor::validate_table(Domain& caller, sim::Mfn mfn,
                                sim::PtLevel level) {
  // Mark in-progress to terminate (reject) self-referencing structures that
  // would otherwise recurse: a table reached again during its own
  // validation shows up with a non-None transient type.
  PageInfo& pi = frames_.info(mfn);
  const PageType saved = pi.type;
  pi.type = table_type_of(level);

  std::vector<std::pair<unsigned, sim::Pte>> accepted;
  long rc = kOk;
  for (unsigned i = 0; i < sim::kPtEntries && rc == kOk; ++i) {
    if (level == sim::PtLevel::L4 && !guest_l4_slot(i)) continue;
    const sim::Pte e{mem_->read_slot(mfn, i)};
    if (!e.present()) continue;
    rc = validate_entry_target(caller, level, e);
    if (rc == kOk) accepted.emplace_back(i, e);
  }

  if (rc != kOk) {
    // Roll back references taken for already-accepted entries.
    for (auto it = accepted.rbegin(); it != accepted.rend(); ++it) {
      const sim::Pte e = it->second;
      if (level == sim::PtLevel::L1) {
        if (e.writable()) {
          put_page_type(e.frame());
        } else {
          PageInfo& ti = frames_.info(e.frame());
          if (ti.ref_count > 1) --ti.ref_count;
        }
      } else if (!e.large_page()) {
        put_page_type(e.frame());
      }
    }
    pi.type = saved;
    return rc;
  }

  if (level == sim::PtLevel::L4) install_reserved_slots(mfn);
  pi.type = saved;  // get_page_type() sets the final type on success
  return kOk;
}

// -------------------------------------------------------------- mmu_update

long Hypervisor::validate_and_write_entry(Domain& caller, sim::Mfn table,
                                          unsigned index, sim::Pte entry) {
  const PageInfo& pi = frames_.info(table);
  if (pi.owner != caller.id()) return kEPERM;
  const auto level = level_of_type(pi.type);
  if (!level || !pi.validated) return kEINVAL;  // not a live page table

  const sim::Pte old{mem_->read_slot(table, index)};

  if (*level == sim::PtLevel::L4 && !guest_l4_slot(index)) {
    // Guest writes into the Xen-reserved window of its own L4.
    if (policy_.strict_reserved_slot_check) {
      cover(ValidationBranch::ReservedSlotStrict, pi.type);
      return kEPERM;
    }
    if (index != kLinearPtSlot) {
      cover(ValidationBranch::ReservedSlotNonLinear, pi.type);
      return kEPERM;
    }
    // Pre-4.9 linear-page-table support: a READ-ONLY same-level self map.
    if (!entry.present()) {
      cover(ValidationBranch::LinearSlotCleared, pi.type);
      mem_->write_slot(table, index, entry.raw());
      return kOk;
    }
    if (!mem_->contains(entry.frame())) {
      cover(ValidationBranch::EntryBadFrame, pi.type);
      return kEINVAL;
    }
    const PageInfo& ti = frames_.info(entry.frame());
    if (ti.owner != caller.id() || ti.type != PageType::L4) {
      cover(ValidationBranch::EntryForeignFrame, ti.type);
      return kEPERM;
    }
    if (entry.writable()) {
      // XSA-182: the fast path skips re-validation when an update keeps the
      // frame and only flips flag bits — letting RW onto a linear mapping.
      const bool fastpath = policy_.xsa182_l4_fastpath_unvalidated &&
                            old.present() && old.frame() == entry.frame();
      if (!fastpath) {
        cover(ValidationBranch::LinearRwRefused, ti.type);
        return kEPERM;  // the fix: writable linear maps refused
      }
      cover(ValidationBranch::Xsa182FastpathTaken, ti.type);
    } else {
      cover(ValidationBranch::LinearRoSelfMap, ti.type);
    }
    mem_->write_slot(table, index, entry.raw());
    return kOk;
  }

  const long rc = validate_entry_target(caller, *level, entry);
  if (rc != kOk) return rc;

  // Release whatever the old entry held.
  if (old.present() && mem_->contains(old.frame())) {
    if (*level == sim::PtLevel::L1) {
      if (old.writable()) {
        put_page_type(old.frame());
      } else {
        PageInfo& ti = frames_.info(old.frame());
        if (ti.ref_count > 1) --ti.ref_count;
      }
    } else if (!old.large_page()) {
      put_page_type(old.frame());
    }
  }
  mem_->write_slot(table, index, entry.raw());
  return kOk;
}

long Hypervisor::hypercall_mmu_update(DomainId caller,
                                      std::span<const MmuUpdate> reqs,
                                      unsigned* done) {
  if (done) *done = 0;
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  for (const MmuUpdate& req : reqs) {
    long rc = kOk;
    switch (req.command()) {
      case kMmuNormalPtUpdate:
      case kMmuPtUpdatePreserveAd: {
        const sim::Paddr target = req.target();
        if (!mem_->contains(target, 8) || target.raw() % 8 != 0) {
          rc = kEINVAL;
          break;
        }
        const sim::Mfn table = sim::paddr_to_mfn(target);
        const unsigned index =
            static_cast<unsigned>(sim::page_offset(target) / 8);
        rc = validate_and_write_entry(dom, table, index, sim::Pte{req.val});
        break;
      }
      case kMmuMachphysUpdate:
        rc = kOk;  // M2P bookkeeping is implicit in this model
        break;
      default:
        rc = kEINVAL;
    }
    if (rc != kOk) return rc;
    if (done) ++*done;
  }
  return kOk;
}

long Hypervisor::hypercall_update_va_mapping(DomainId caller, sim::Vaddr va,
                                             sim::Pte val) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  auto walk = mmu_.walk(dom.cr3(), va);
  // Locate the L1 slot covering `va`: the walk must reach L1 (a PSE
  // mapping has no L1 to update).
  const std::vector<sim::WalkStep>* steps = nullptr;
  if (walk) {
    steps = &walk.value().steps;
  } else {
    // A not-present fault still visited the slot we want iff it got to L1.
    return kEFAULT;
  }
  const sim::WalkStep& leaf = steps->back();
  if (leaf.level != sim::PtLevel::L1) return kEINVAL;
  return validate_and_write_entry(dom, leaf.table, leaf.index, val);
}

long Hypervisor::hypercall_mmuext_op(DomainId caller, const MmuExtOp& op) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  switch (op.cmd) {
    case MmuExtCmd::PinL1Table:
    case MmuExtCmd::PinL2Table:
    case MmuExtCmd::PinL3Table:
    case MmuExtCmd::PinL4Table: {
      const auto level = static_cast<sim::PtLevel>(
          static_cast<int>(op.cmd) - static_cast<int>(MmuExtCmd::PinL1Table) +
          1);
      const long rc = get_page_type(dom, op.mfn, table_type_of(level));
      if (rc == kOk) dom.add_pinned(op.mfn);
      cover(rc == kOk ? ValidationBranch::PinOk : ValidationBranch::PinRefused,
            mem_->contains(op.mfn) ? frames_.info(op.mfn).type
                                   : PageType::None);
      return rc;
    }
    case MmuExtCmd::UnpinTable: {
      // The loaded baseptr keeps its table in use: real Xen holds a
      // separate type reference for cr3, which this model folds into the
      // pin — so dropping the pin of the live root would cascade-invalidate
      // the whole tree out from under the running domain.
      const PageType t =
          mem_->contains(op.mfn) ? frames_.info(op.mfn).type : PageType::None;
      if (op.mfn == dom.cr3()) {
        cover(ValidationBranch::UnpinRefused, t);
        return kEBUSY;
      }
      if (!dom.remove_pinned(op.mfn)) {
        cover(ValidationBranch::UnpinRefused, t);
        return kEINVAL;
      }
      put_page_type(op.mfn);
      cover(ValidationBranch::UnpinOk, t);
      return kOk;
    }
    case MmuExtCmd::NewBaseptr: {
      if (!mem_->contains(op.mfn)) {
        cover(ValidationBranch::BaseptrRefused);
        return kEINVAL;
      }
      const PageInfo& pi = frames_.info(op.mfn);
      if (pi.owner != caller || pi.type != PageType::L4 || !pi.validated) {
        cover(ValidationBranch::BaseptrRefused, pi.type);
        return kEINVAL;
      }
      dom.set_cr3(op.mfn);
      cover(ValidationBranch::BaseptrOk, pi.type);
      return kOk;
    }
    case MmuExtCmd::TlbFlushLocal:
    case MmuExtCmd::InvlpgLocal:
      return kOk;
  }
  return kEINVAL;
}

// ---------------------------------------------------------- memory_exchange

long Hypervisor::copy_to_guest(Domain& caller, sim::Vaddr va,
                               std::span<const std::uint8_t> bytes,
                               bool checked) {
  cover(checked ? ValidationBranch::ExchangeOutputChecked
                : ValidationBranch::ExchangeOutputUnchecked);
  std::uint64_t done = 0;
  while (done < bytes.size()) {
    const sim::Vaddr cur = va + done;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(bytes.size() - done,
                                sim::kPageSize - sim::page_offset(cur));
    if (checked) {
      // The XSA-212 *fix*: the destination must be a guest-writable
      // address — both range-checked and translated with user rights.
      if (guest_range_blocked(cur) || in_xen_reserved_slots(cur)) {
        return kEFAULT;
      }
      auto walk = mmu_.translate(caller.cr3(), cur, sim::AccessType::Write,
                                 sim::AccessMode::User);
      if (!walk) return kEFAULT;
      mem_->write(walk.value().physical, bytes.subspan(done, chunk));
    } else {
      // XSA-212: no access_ok() — the hypervisor writes with supervisor
      // rights through the current (caller's) page tables, which include
      // every Xen mapping, at an arbitrary linear address.
      auto walk = mmu_.translate(caller.cr3(), cur, sim::AccessType::Write,
                                 sim::AccessMode::Supervisor);
      if (!walk) return kEFAULT;
      mem_->write(walk.value().physical, bytes.subspan(done, chunk));
    }
    done += chunk;
  }
  return kOk;
}

long Hypervisor::hypercall_memory_exchange(DomainId caller,
                                           MemoryExchange& exch) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  for (const sim::Pfn pfn : exch.in_extents) {
    const auto old = dom.p2m(pfn);
    if (!old) return kEINVAL;
    PageInfo& pi = frames_.info(*old);
    if (pi.owner != caller) return kEPERM;
    if (pi.type != PageType::None || pi.type_count != 0 || pi.ref_count != 1) {
      cover(ValidationBranch::ExchangeBusy, pi.type);
      return kEBUSY;  // page still mapped or typed; unmap it first
    }

    // Allocate the replacement before releasing the old frame, like the
    // real hypercall (steal_page + alloc_domheap_pages ordering).
    const auto fresh = frames_.alloc(caller);
    if (!fresh) return kENOMEM;
    frames_.free(*old);
    mem_->zero_frame(*fresh);
    dom.set_p2m(pfn, *fresh);

    const std::uint64_t result = fresh->raw();
    const sim::Vaddr out{exch.out_extent_start.raw() +
                         8 * exch.nr_exchanged};
    const bool checked = !policy_.xsa212_unchecked_exchange_output;
    const long rc = copy_to_guest(
        dom, out,
        {reinterpret_cast<const std::uint8_t*>(&result), sizeof result},
        checked);
    if (rc != kOk) return rc;
    ++exch.nr_exchanged;
  }
  return kOk;
}

// ----------------------------------------------------------------- ballooning

long Hypervisor::hypercall_decrease_reservation(DomainId caller,
                                                sim::Pfn pfn) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  const auto mfn = dom.p2m(pfn);
  if (!mfn) return kEINVAL;
  PageInfo& pi = frames_.info(*mfn);
  if (pi.owner != caller) return kEPERM;
  if (pi.type != PageType::None || pi.type_count != 0 || pi.ref_count != 1) {
    return kEBUSY;  // still mapped or typed; unmap it first
  }
  // NOTE: the frame is returned to the heap *unscrubbed* — scrubbing policy
  // applies on domain destruction, and reuse is what the recycled-frame
  // confidentiality model exercises.
  frames_.free(*mfn);
  dom.set_p2m(pfn, std::nullopt);
  return kOk;
}

long Hypervisor::hypercall_populate_physmap(DomainId caller, sim::Pfn pfn) {
  if (crashed_) return kEINVAL;
  Domain& dom = domain(caller);
  if (pfn.raw() >= dom.nr_pages()) return kEINVAL;
  if (dom.p2m(pfn)) return kEINVAL;  // slot already populated
  const auto fresh = frames_.alloc_prefer_recycled(caller);
  if (!fresh) return kENOMEM;
  dom.set_p2m(pfn, *fresh);
  return kOk;
}

// --------------------------------------------------------- arbitrary_access

long Hypervisor::hypercall_arbitrary_access(DomainId caller,
                                            const ArbitraryAccess& req) {
  if (crashed_) return kEINVAL;
  if (!config_.injector_enabled) {
    cover(ValidationBranch::InjectorRefused);
    return kENOSYS;
  }
  Domain& dom = domain(caller);
  if (trace_) {
    trace_->emit(obs::TraceCategory::Injection, caller,
                 static_cast<std::uint32_t>(req.action),
                 static_cast<std::int64_t>(req.buffer.size()), req.addr);
  }

  if (is_linear(req.action)) {
    // Linear addresses are already mapped in the hypervisor and are used
    // directly (paper §V-B): supervisor rights on the current page tables,
    // which contain both the guest's and every Xen mapping.
    std::uint64_t done = 0;
    PageType first_type = PageType::None;
    while (done < req.buffer.size()) {
      const sim::Vaddr cur{req.addr + done};
      const std::uint64_t chunk =
          std::min<std::uint64_t>(req.buffer.size() - done,
                                  sim::kPageSize - sim::page_offset(cur));
      auto walk = mmu_.translate(dom.cr3(), cur,
                                 is_write(req.action) ? sim::AccessType::Write
                                                      : sim::AccessType::Read,
                                 sim::AccessMode::Supervisor);
      if (!walk) {
        cover(ValidationBranch::InjectorRefused);
        return kEFAULT;
      }
      if (done == 0) {
        first_type =
            frames_.info(sim::paddr_to_mfn(walk.value().physical)).type;
      }
      if (is_write(req.action)) {
        mem_->write(walk.value().physical, req.buffer.subspan(done, chunk));
      } else {
        mem_->read(walk.value().physical, req.buffer.subspan(done, chunk));
      }
      done += chunk;
    }
    cover(ValidationBranch::InjectorServed, first_type);
    return kOk;
  }

  // Physical addresses are mapped into the hypervisor address space first
  // (our directmap stands in for map_domain_page()).
  const sim::Paddr pa{req.addr};
  if (!mem_->contains(pa, req.buffer.size())) {
    cover(ValidationBranch::InjectorRefused);
    return kEFAULT;
  }
  cover(ValidationBranch::InjectorServed,
        frames_.info(sim::paddr_to_mfn(pa)).type);
  if (is_write(req.action)) {
    mem_->write(pa, req.buffer);
  } else {
    mem_->read(pa, req.buffer);
  }
  return kOk;
}

}  // namespace ii::hv
