#include "hv/event_channel.hpp"

#include "hv/errors.hpp"
#include "hv/hypervisor.hpp"
#include "hv/layout.hpp"

namespace ii::hv {

sim::Paddr EventChannelOps::shared_info_of(DomainId domain) const {
  const auto mfn = hv_->domain(domain).p2m(kSharedInfoPfn);
  return sim::mfn_to_paddr(*mfn);
}

long EventChannelOps::alloc_unbound(DomainId owner, DomainId remote,
                                    unsigned* port) {
  (void)hv_->domain(owner);
  unsigned& next = next_port_[owner];
  if (next >= SharedInfoLayout::kPorts) return kENOMEM;
  const unsigned p = next++;
  ports_[owner][p] = Port{.allocated = true,
                          .remote = remote,
                          .bound = false,
                          .peer_domain = kDomInvalid,
                          .peer_port = 0};
  if (port) *port = p;
  return kOk;
}

long EventChannelOps::bind_interdomain(DomainId caller, DomainId remote,
                                       unsigned remote_port,
                                       unsigned* local_port) {
  auto remote_ports = ports_.find(remote);
  if (remote_ports == ports_.end()) return kENOENT;
  auto it = remote_ports->second.find(remote_port);
  if (it == remote_ports->second.end() || !it->second.allocated) {
    return kENOENT;
  }
  Port& rport = it->second;
  if (rport.bound || rport.remote != caller) return kEPERM;

  unsigned& next = next_port_[caller];
  if (next >= SharedInfoLayout::kPorts) return kENOMEM;
  const unsigned local = next++;
  ports_[caller][local] = Port{.allocated = true,
                               .remote = remote,
                               .bound = true,
                               .peer_domain = remote,
                               .peer_port = remote_port};
  rport.bound = true;
  rport.peer_domain = caller;
  rport.peer_port = local;
  if (local_port) *local_port = local;
  return kOk;
}

void EventChannelOps::set_pending_bit(DomainId domain, unsigned port) {
  const sim::Paddr base = shared_info_of(domain);
  const sim::Paddr word =
      base + SharedInfoLayout::kPendingOffset + (port / 64) * 8;
  hv_->memory().write_u64(word,
                          hv_->memory().read_u64(word) | (1ULL << (port % 64)));
}

long EventChannelOps::send(DomainId caller, unsigned port) {
  auto own = ports_.find(caller);
  if (own == ports_.end()) return kENOENT;
  auto it = own->second.find(port);
  if (it == own->second.end() || !it->second.bound) return kENOENT;
  set_pending_bit(it->second.peer_domain, it->second.peer_port);
  ++total_sent_;
  return kOk;
}

long EventChannelOps::register_handler(DomainId domain, unsigned port) {
  if (port >= SharedInfoLayout::kPorts) return kEINVAL;
  handlers_.insert({domain, port});
  return kOk;
}

long EventChannelOps::set_mask(DomainId domain, unsigned port, bool masked) {
  if (port >= SharedInfoLayout::kPorts) return kEINVAL;
  const sim::Paddr word = shared_info_of(domain) +
                          SharedInfoLayout::kMaskOffset + (port / 64) * 8;
  std::uint64_t bits = hv_->memory().read_u64(word);
  if (masked) {
    bits |= 1ULL << (port % 64);
  } else {
    bits &= ~(1ULL << (port % 64));
  }
  hv_->memory().write_u64(word, bits);
  return kOk;
}

bool EventChannelOps::pending(DomainId domain, unsigned port) const {
  const sim::Paddr word = shared_info_of(domain) +
                          SharedInfoLayout::kPendingOffset + (port / 64) * 8;
  return hv_->memory().read_u64(word) & (1ULL << (port % 64));
}

void EventChannelOps::domain_destroyed(DomainId domain) {
  ports_.erase(domain);
  next_port_.erase(domain);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    it = it->first == domain ? handlers_.erase(it) : std::next(it);
  }
  // Unbind any peer ports that pointed at the dead domain.
  for (auto& [owner, ports] : ports_) {
    for (auto& [number, port] : ports) {
      if (port.bound && port.peer_domain == domain) {
        port.bound = false;
        port.peer_domain = kDomInvalid;
        port.peer_port = 0;
      }
    }
  }
}

EventChannelOps::DispatchResult EventChannelOps::dispatch(DomainId domain,
                                                          unsigned max_passes) {
  DispatchResult result{};
  const sim::Paddr base = shared_info_of(domain);
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool any_pending = false;
    bool progress = false;
    for (unsigned word = 0; word < SharedInfoLayout::kPorts / 64; ++word) {
      const sim::Paddr pending_at =
          base + SharedInfoLayout::kPendingOffset + word * 8;
      const std::uint64_t mask = hv_->memory().read_u64(
          base + SharedInfoLayout::kMaskOffset + word * 8);
      std::uint64_t bits = hv_->memory().read_u64(pending_at) & ~mask;
      if (bits == 0) continue;
      any_pending = true;
      for (unsigned b = 0; b < 64; ++b) {
        if (!(bits & (1ULL << b))) continue;
        const unsigned port = word * 64 + b;
        if (handlers_.contains({domain, port})) {
          // Deliver: clear the bit, count the upcall.
          std::uint64_t raw = hv_->memory().read_u64(pending_at);
          hv_->memory().write_u64(pending_at, raw & ~(1ULL << b));
          ++result.delivered;
          progress = true;
        } else if (!hv_->policy().evtchn_requeue_unbound) {
          // Hardened behaviour: events for unbound/handler-less ports are
          // dropped instead of spinning the delivery loop.
          std::uint64_t raw = hv_->memory().read_u64(pending_at);
          hv_->memory().write_u64(pending_at, raw & ~(1ULL << b));
          ++result.dropped;
          progress = true;
        }
        // else: re-queued — the bit stays set and the loop comes back.
      }
    }
    if (!any_pending) {
      if (result.dropped > 0) {
        hv_->log("(XEN) d" + std::to_string(domain) + ": dropped " +
                 std::to_string(result.dropped) +
                 " events raised on unbound ports");
      }
      return result;
    }
    if (!progress) {
      // Pending work that can never drain: the pre-hardening delivery loop
      // spins on it forever. Model the wedged CPU.
      result.livelocked = true;
      hv_->report_cpu_hang(
          "CPU0: stuck in event delivery loop (d" + std::to_string(domain) +
          ", " + std::to_string(result.delivered) + " delivered)");
      return result;
    }
  }
  return result;
}

}  // namespace ii::hv
