// The simulated Xen PV hypervisor.
//
// One Hypervisor instance owns the machine: it reserves frames for its own
// text/data/IDT, builds its address space (directmap + guest-visible area +
// the version-dependent linear alias), builds PV domains with direct-paging
// page tables, and services hypercalls with the validation behaviour of the
// configured VersionPolicy. Everything an intrusion can corrupt is in the
// shared sim::PhysicalMemory, so exploits and the injector act on the same
// substrate the legitimate paths use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hv/abi.hpp"
#include "hv/coverage.hpp"
#include "hv/domain.hpp"
#include "hv/errors.hpp"
#include "hv/event_channel.hpp"
#include "hv/frame_table.hpp"
#include "hv/grant_table.hpp"
#include "hv/layout.hpp"
#include "hv/version.hpp"
#include "obs/trace.hpp"
#include "sim/expected.hpp"
#include "sim/idt.hpp"
#include "sim/mmu.hpp"
#include "sim/phys_mem.hpp"

namespace ii::obs {
class SpanProfiler;  // obs/span.hpp
}  // namespace ii::obs

namespace ii::hv {

struct RecoveryReport;  // recovery.hpp
struct HvSnapshot;      // snapshot.hpp
struct HvDelta;         // snapshot.hpp
struct HvCowState;      // snapshot.hpp

/// Counters over the snapshot/hash/restore machinery since the last
/// reset_snapshot_stats(). The campaign and the model checker surface these
/// as obs metrics (snapshot.frames_copied, hash.frames_rehashed, ...) to
/// prove the incremental paths actually skip work.
struct SnapshotStats {
  std::uint64_t hash_calls = 0;        ///< state_hash() invocations
  std::uint64_t frames_rehashed = 0;   ///< frame digests recomputed
  std::uint64_t frames_hash_cached = 0;  ///< frame digests reused
  std::uint64_t full_restores = 0;
  std::uint64_t delta_restores = 0;    ///< both restore_delta overloads
  std::uint64_t frames_copied = 0;     ///< frames written by restores
  std::uint64_t delta_snapshots = 0;
  std::uint64_t frames_delta_captured = 0;  ///< frames copied into deltas
  std::uint64_t cow_captures = 0;      ///< snapshot_cow() invocations
  std::uint64_t cow_restores = 0;      ///< restore_cow() invocations
  std::uint64_t cow_frames_copied = 0;  ///< frames materialized into new blocks
  std::uint64_t cow_frames_shared = 0;  ///< frames aliased from the parent

  /// Fold another engine's counters in (the parallel model checker sums
  /// per-worker machines into one result).
  SnapshotStats& operator+=(const SnapshotStats& o) {
    hash_calls += o.hash_calls;
    frames_rehashed += o.frames_rehashed;
    frames_hash_cached += o.frames_hash_cached;
    full_restores += o.full_restores;
    delta_restores += o.delta_restores;
    frames_copied += o.frames_copied;
    delta_snapshots += o.delta_snapshots;
    frames_delta_captured += o.frames_delta_captured;
    cow_captures += o.cow_captures;
    cow_restores += o.cow_restores;
    cow_frames_copied += o.cow_frames_copied;
    cow_frames_shared += o.cow_frames_shared;
    return *this;
  }
};

/// Construction parameters.
struct HvConfig {
  /// Frames reserved at boot for hypervisor text/data (frame 0 holds the
  /// guest-readable XenInfoPage; the IDT gets its own frame).
  std::uint64_t xen_frames = 16;
  /// Whether the HYPERVISOR_arbitrary_access injector hypercall is compiled
  /// in (the paper's prototype is a patched build; stock builds refuse it
  /// with -ENOSYS).
  bool injector_enabled = false;
};

/// Guest-readable identification block at the start of Xen's text mapping
/// (stand-in for the layout knowledge a real attacker gets from the Xen
/// binary and its symbol table).
struct XenInfoPage {
  static constexpr std::uint64_t kMagic = 0x58454E5F494E464FULL;  // "XEN_INFO"
  std::uint64_t magic = kMagic;
  std::uint32_t version_major = 0;
  std::uint32_t version_minor = 0;
  std::uint64_t xen_l3_paddr = 0;  ///< machine address of the shared Xen L3
  std::uint64_t idt_paddr = 0;     ///< machine address of the IDT
};

/// What the hypervisor passes to the registered code executor when an IDT
/// gate dispatches into attacker-mapped memory.
struct ExecutionContext {
  unsigned vector = 0;
  sim::Vaddr handler{};    ///< gate target (hypervisor linear address)
  sim::Mfn code_frame{};   ///< machine frame the handler resolved to
  std::uint64_t offset = 0;  ///< handler offset within the frame
};

/// Outcome of a guest-virtual-address access attempt.
struct GuestAccessFault {
  sim::FaultReason reason{};
  std::string detail;
};

class Hypervisor {
 public:
  Hypervisor(sim::PhysicalMemory& mem, VersionPolicy policy,
             HvConfig config = {});

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  // ------------------------------------------------------------- identity
  [[nodiscard]] const VersionPolicy& policy() const { return policy_; }
  [[nodiscard]] XenVersion version() const { return policy_.version; }
  [[nodiscard]] bool injector_enabled() const { return config_.injector_enabled; }

  // ------------------------------------------------------------- lifecycle
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Fatal error: logs the Xen panic banner and halts the machine. Public
  /// because the platform glue reports guest-triggered fatal states too.
  void panic(const std::string& reason);

  /// ReHype-style micro-reboot (recovery.cpp): after a panic or a wedged
  /// CPU, reconstruct the hypervisor's bookkeeping in place — IDT and
  /// shared-L3 reset, frame types/refcounts re-derived by re-walking (and
  /// sanitizing) every domain's page tables, P2M reconciliation, grant
  /// reference re-derivation — while preserving guest memory contents.
  /// Returns the invariant audits taken before and after. Domains whose
  /// tables cannot be made safe again are marked crashed (ReHype's
  /// "failed VM" outcome) rather than aborting recovery.
  RecoveryReport recover();

  /// Per-line hypervisor console ring ("(XEN) ..." lines).
  [[nodiscard]] const std::vector<std::string>& console() const {
    return console_;
  }
  void log(const std::string& line);

  // ------------------------------------------------------------- domains
  /// Build a PV domain: allocates `nr_pages` machine-contiguous frames,
  /// constructs its initial direct-paging tables (kernel directmap at
  /// kGuestKernelBase), pins the L4 and loads CR3. The first domain created
  /// must be dom0 (privileged).
  DomainId create_domain(const std::string& name, bool privileged,
                         std::uint64_t nr_pages);

  [[nodiscard]] Domain& domain(DomainId id);
  [[nodiscard]] const Domain& domain(DomainId id) const;
  [[nodiscard]] std::vector<DomainId> domain_ids() const;

  // ------------------------------------------------------------- hypercalls
  /// HYPERVISOR_mmu_update: validated page-table writes. `done` (optional)
  /// receives the number of requests completed.
  long hypercall_mmu_update(DomainId caller, std::span<const MmuUpdate> reqs,
                            unsigned* done = nullptr);

  /// HYPERVISOR_update_va_mapping: update the L1 entry mapping `va` in the
  /// caller's current address space.
  long hypercall_update_va_mapping(DomainId caller, sim::Vaddr va,
                                   sim::Pte val);

  /// HYPERVISOR_mmuext_op: pin/unpin/baseptr operations.
  long hypercall_mmuext_op(DomainId caller, const MmuExtOp& op);

  /// HYPERVISOR_memory_op(XENMEM_exchange). Carries XSA-212 when the policy
  /// says so.
  long hypercall_memory_exchange(DomainId caller, MemoryExchange& exch);

  /// HYPERVISOR_memory_op(XENMEM_decrease_reservation): balloon one page
  /// out. The page must be unmapped and type-free; its P2M slot empties.
  long hypercall_decrease_reservation(DomainId caller, sim::Pfn pfn);

  /// HYPERVISOR_memory_op(XENMEM_populate_physmap): balloon one page back
  /// into an empty P2M slot. Deliberately does NOT scrub the frame — a
  /// recycled frame carries whatever the scrub-on-destroy policy left in it.
  long hypercall_populate_physmap(DomainId caller, sim::Pfn pfn);

  /// XEN_DOMCTL_destroydomain, dom0-only: tear a domain down — unpin its
  /// tables, release every frame (scrubbed per policy), drop it from the
  /// domain list. Refused with -EBUSY while foreign grant mappings of its
  /// pages exist.
  long hypercall_domctl_destroy(DomainId caller, DomainId victim);

  /// HYPERVISOR_set_trap_table.
  long hypercall_set_trap_table(DomainId caller, std::span<const TrapInfo> traps);

  /// HYPERVISOR_console_io: append a guest line to the console ring.
  long hypercall_console_io(DomainId caller, const std::string& line);

  /// HYPERVISOR_sched_op(shutdown).
  long hypercall_sched_op_shutdown(DomainId caller, ShutdownReason reason);

  /// HYPERVISOR_arbitrary_access — the intrusion-injection interface
  /// (paper §V-B). Refused with -ENOSYS unless built with the injector.
  long hypercall_arbitrary_access(DomainId caller, const ArbitraryAccess& req);

  /// HYPERVISOR_grant_table_op surface (see GrantOps for the sub-ops).
  [[nodiscard]] GrantOps& grants() { return grants_; }
  [[nodiscard]] const GrantOps& grants() const { return grants_; }

  /// HYPERVISOR_event_channel_op surface (see EventChannelOps).
  [[nodiscard]] EventChannelOps& events() { return events_; }
  [[nodiscard]] const EventChannelOps& events() const { return events_; }

  /// Grant-v2 plumbing used by GrantOps: expose/remove the Xen-owned grant
  /// status frame through the guest's kGrantStatusPfn window.
  long map_grant_status_page(DomainId domain, sim::Mfn status_frame);
  long unmap_grant_status_page(DomainId domain);

  /// Availability state: a wedged (livelocked) CPU, distinct from a panic.
  [[nodiscard]] bool cpu_hung() const { return cpu_hung_; }
  void report_cpu_hang(const std::string& reason);

  // --------------------------------------------------------------- snapshot
  /// Capture the complete mutable machine state — physical memory image,
  /// frame table (incl. allocator), domains, grant and event-channel state,
  /// liveness flags — as a value (snapshot.cpp). A snapshot is only valid
  /// for restoring onto the *same* Hypervisor instance (boot-time layout —
  /// xen tables, IDT base, policy — is not captured because it never
  /// changes after construction). This is what lets the bounded model
  /// checker (src/analysis) explore the hypercall state machine by
  /// checkpoint/restore instead of replaying from boot.
  [[nodiscard]] HvSnapshot snapshot() const;
  void restore(const HvSnapshot& snap);

  /// Capture the current state as a delta against `base` (a full snapshot
  /// previously taken from this machine): only frames written since the
  /// baseline, changed frame-table entries, and the small bookkeeping in
  /// full. O(dirty frames + bookkeeping), no byte comparisons.
  [[nodiscard]] HvDelta snapshot_delta(const HvSnapshot& base) const;

  /// Restore back to `base`, copying only frames written since it was
  /// taken. Byte-identical to restore(base). Returns frames copied.
  std::uint64_t restore_delta(const HvSnapshot& base);

  /// Restore to the state `delta` describes (captured against `base`),
  /// from any current state: frames currently diverged from the baseline
  /// are rewound, frames the delta carries are applied. Returns frames
  /// copied.
  ///
  /// `foreign` must be set when `delta` was captured on a *different*
  /// Hypervisor instance (booted identically, so `base` — which must be
  /// THIS machine's own root snapshot — matches the capturing machine's
  /// root byte-for-byte). Write generations are per-machine: replaying the
  /// capturer's recorded generations here could collide with a generation
  /// this machine already handed to different bytes, leaving a stale entry
  /// in the frame-digest cache. Foreign frames are therefore applied
  /// through the ordinary write path, which stamps fresh generations;
  /// rewinds to `base` keep the boot-time generations, which identically
  /// booted machines share.
  std::uint64_t restore_delta(const HvSnapshot& base, const HvDelta& delta,
                              bool foreign = false);

  /// Capture the current state as a node of the copy-on-write snapshot
  /// forest (snapshot.hpp): frames diverged from `base` either alias the
  /// parent node's refcounted blocks (unchanged since the parent) or are
  /// materialized into fresh blocks. `gen_marker` must be the memory
  /// generation observed immediately after the parent state was restored
  /// onto this machine — every frame written since then (generation >
  /// marker) gets a new block, every other diverged frame must be present
  /// in `parent`. Pass parent == nullptr when the machine was last rewound
  /// to `base` itself (all diverged frames are then fresh). O(dirty).
  [[nodiscard]] HvCowState snapshot_cow(const HvSnapshot& base,
                                        const HvCowState* parent,
                                        std::uint64_t gen_marker) const;

  /// Restore to the state a CoW node describes, from any current state.
  /// CoW nodes are machine-portable (they carry bytes, not generations):
  /// node frames go through the ordinary write path — fresh generations,
  /// same reasoning as a foreign delta — and frames diverged from `base`
  /// that the node does not carry are rewound to the baseline. Returns
  /// frames copied.
  std::uint64_t restore_cow(const HvSnapshot& base, const HvCowState& cow);

  /// 64-bit FNV-1a digest of the semantically observable state (memory,
  /// frame table + allocator, domains with canonicalized pin order, grant
  /// and event-channel state, liveness flags; console excluded). Two states
  /// with equal hashes behave identically under every further hypercall —
  /// the model checker's dedup key.
  ///
  /// Incremental: the memory contribution recombines cached per-frame
  /// digests and only re-hashes frames whose write generation moved since
  /// the digest was computed (PhysicalMemory's dirty tracking).
  [[nodiscard]] std::uint64_t state_hash() const;

  /// Same digest computed from scratch, ignoring and not touching the
  /// per-frame digest cache. Exists so tests can assert the incremental
  /// path never drifts; always equals state_hash().
  [[nodiscard]] std::uint64_t state_hash_full() const;

  [[nodiscard]] const SnapshotStats& snapshot_stats() const { return snap_stats_; }
  void reset_snapshot_stats() { snap_stats_ = SnapshotStats{}; }

  // ---------------------------------------------------------- observability
  /// Attach (or detach with nullptr) a trace sink. The same sink is wired
  /// into the software MMU so walk faults carry through. The hypervisor
  /// never owns the sink; campaigns attach a per-cell sink, tools a
  /// process-wide one. With no sink attached every instrumentation site is
  /// one predicted-not-taken branch.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_ = sink;
    mmu_.set_trace_sink(sink);
  }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

  /// Attach (or detach with nullptr) a span profiler; same ownership and
  /// cost model as the trace sink. Currently only recover() is phase-
  /// instrumented: its pre_audit/idt/frame_table/p2m/domains/grants/
  /// post_audit spans nest under whatever span the caller has open (the
  /// campaign's cell/recover), with deterministic step counts taken from
  /// the RecoveryReport counters.
  void set_span_profiler(obs::SpanProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] obs::SpanProfiler* span_profiler() const { return profiler_; }

  /// Attach (or detach with nullptr) a validation-branch coverage hook
  /// (hv/coverage.hpp); same ownership and cost model as the trace sink.
  /// The coverage-guided fuzzer is the intended consumer: every accept/
  /// reject decision in the validation engine reports which branch it took
  /// and what kind of frame it was deciding about.
  void set_coverage_hook(CoverageHook* hook) { cov_ = hook; }
  [[nodiscard]] CoverageHook* coverage_hook() const { return cov_; }

  // ----------------------------------------------------- guest memory access
  /// Perform a data access at guest virtual address `va` on behalf of
  /// domain `caller` (guest kernel or user code; both are "user" to the
  /// MMU in this PV model). On fault the hypervisor first dispatches the
  /// page-fault vector through the IDT — which is how a corrupted IDT turns
  /// the *next* fault into a host crash — and then reports the fault.
  [[nodiscard]] Expected<std::monostate, GuestAccessFault> guest_read(
      DomainId caller, sim::Vaddr va, std::span<std::uint8_t> out);
  [[nodiscard]] Expected<std::monostate, GuestAccessFault> guest_write(
      DomainId caller, sim::Vaddr va, std::span<const std::uint8_t> in);

  /// Resolve a guest VA without performing an access (no fault delivery).
  [[nodiscard]] Expected<sim::Walk, sim::PageFault> guest_walk(
      DomainId caller, sim::Vaddr va) const;

  // -------------------------------------------------------------- interrupts
  /// `int $vector` executed by a guest. Dispatches through the (corruptible)
  /// in-memory IDT: a malformed gate double-faults the host; a gate whose
  /// handler resolves into mapped executable memory outside Xen's text runs
  /// through the registered code executor with hypervisor privilege.
  long software_interrupt(DomainId caller, unsigned vector);

  using CodeExecutor = std::function<void(const ExecutionContext&)>;
  void set_code_executor(CodeExecutor exec) { executor_ = std::move(exec); }

  /// `sidt`: linear address of the IDT as the hypervisor sees it.
  [[nodiscard]] sim::Vaddr sidt() const;

  // ------------------------------------------------------------ introspection
  [[nodiscard]] sim::PhysicalMemory& memory() { return *mem_; }
  [[nodiscard]] const sim::PhysicalMemory& memory() const { return *mem_; }
  [[nodiscard]] FrameTable& frames() { return frames_; }
  [[nodiscard]] const FrameTable& frames() const { return frames_; }
  [[nodiscard]] const sim::Mmu& mmu() const { return mmu_; }

  [[nodiscard]] sim::Mfn xen_root() const { return xen_l4_; }
  [[nodiscard]] sim::Mfn xen_l3() const { return xen_l3_; }
  [[nodiscard]] sim::Paddr idt_base() const { return idt_base_; }
  [[nodiscard]] sim::Idt idt() { return sim::Idt{*mem_, idt_base_}; }

  /// Legitimate handler address installed at boot for `vector`.
  [[nodiscard]] std::uint64_t default_handler(unsigned vector) const;

  /// Hypervisor-privilege translation (through Xen's own tables).
  [[nodiscard]] Expected<sim::Walk, sim::PageFault> hv_translate(
      sim::Vaddr va, sim::AccessType access) const;

  /// True when the 4.9+ policy forbids guest data access to `va` outside
  /// the explicitly exposed Xen ranges. Exposed for tests.
  [[nodiscard]] bool guest_range_blocked(sim::Vaddr va) const;

 private:
  // boot helpers
  void build_xen_address_space();
  void install_default_idt();
  sim::Mfn alloc_xen_table();

  // domain-builder helpers
  sim::Mfn build_guest_tables(Domain& dom, sim::Mfn first_frame,
                              std::uint64_t nr_pages);
  void install_reserved_slots(sim::Mfn l4);
  /// Machine address of the L1 slot backing `pfn`'s directmap address, or
  /// nullopt when the backing table's P2M entry is gone (possible after a
  /// recovery dropped corrupted P2M slots).
  [[nodiscard]] std::optional<sim::Paddr> guest_l1_slot(const Domain& dom,
                                                        sim::Pfn pfn) const;

  // validation engine (memory.cpp)
  long validate_and_write_entry(Domain& caller, sim::Mfn table, unsigned index,
                                sim::Pte entry);
  long validate_entry_target(Domain& caller, sim::PtLevel level, sim::Pte entry);
  long get_page_type(Domain& caller, sim::Mfn mfn, PageType wanted);
  long get_page_type_impl(Domain& caller, sim::Mfn mfn, PageType wanted);
  void put_page_type(sim::Mfn mfn);
  long validate_table(Domain& caller, sim::Mfn mfn, sim::PtLevel level);
  void invalidate_table(sim::Mfn mfn);
  [[nodiscard]] PageType table_type_of(sim::PtLevel level) const;
  [[nodiscard]] std::optional<sim::PtLevel> level_of_type(PageType t) const;

  // copy engine
  long copy_to_guest(Domain& caller, sim::Vaddr va,
                     std::span<const std::uint8_t> bytes, bool checked);

  // recovery helpers (recovery.cpp). `pins` carries the pre-crash (mfn,
  // type) hints for the domain's pinned tables — the frame reset wipes the
  // live types before the sanitizer runs.
  std::uint64_t recover_sanitize_tables(
      Domain& dom, const std::vector<std::pair<sim::Mfn, PageType>>& pins);

  // fault plumbing
  void dispatch_exception(unsigned vector);

  sim::PhysicalMemory* mem_;
  VersionPolicy policy_;
  HvConfig config_;
  sim::Mmu mmu_;
  FrameTable frames_;

  // Xen's own address space.
  sim::Mfn xen_l4_{};
  sim::Mfn xen_l3_{};        ///< shared L3 installed at L4 slot 256
  sim::Mfn directmap_l3_{};  ///< supervisor directmap at L4 slot 262
  sim::Paddr idt_base_{};
  std::uint64_t xen_text_bytes_ = 0;
  std::vector<std::uint64_t> default_handlers_;

  std::map<DomainId, std::unique_ptr<Domain>> domains_;
  DomainId next_domid_ = kDom0;

  GrantOps grants_{*this};
  EventChannelOps events_{*this};

  bool crashed_ = false;
  bool cpu_hung_ = false;
  std::vector<std::string> console_;
  CodeExecutor executor_;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanProfiler* profiler_ = nullptr;
  CoverageHook* cov_ = nullptr;

  /// Instrumentation shorthand for the validation engine (memory.cpp).
  void cover(ValidationBranch b, PageType t = PageType::None) const {
    if (cov_ != nullptr) cov_->on_branch(b, t);
  }

  // Per-frame digest cache for the incremental state_hash() (snapshot.cpp).
  // digest_gen_[m] holds the PhysicalMemory generation the cached digest
  // was computed at; 0 never matches a real generation. Mutable: the cache
  // is an optimization of a const observation, not state.
  mutable std::vector<std::uint64_t> frame_digest_;
  mutable std::vector<std::uint64_t> frame_digest_gen_;
  mutable SnapshotStats snap_stats_;

  // state_hash / state_hash_full shared body (snapshot.cpp).
  [[nodiscard]] std::uint64_t state_hash_impl(bool use_cache) const;
  /// Hash of everything except the memory image (snapshot.cpp).
  void hash_bookkeeping(class StateHasher& h) const;
};

}  // namespace ii::hv
