// Cloneable, hashable hypervisor state snapshots — full, delta, and
// copy-on-write forest nodes (HvCowState, below).
//
// The Hypervisor itself is non-copyable (it owns callbacks and is wired
// into shared PhysicalMemory), but everything an intrusion — or a hypercall
// — can mutate is plain data: the memory image, the frame table, the
// domains, grant and event-channel bookkeeping, and the liveness flags.
// HvSnapshot captures exactly that set as a value, so the bounded model
// checker (src/analysis) can push a state on its work queue, explore one
// successor, and restore; and tests can assert byte-precise state
// equivalence after restore.
//
// A snapshot does NOT capture boot-time constants (Xen's own tables, the
// IDT base, default handlers, the version policy, registered sinks and
// executors): those never change after construction, which is why a
// snapshot may only be restored onto the Hypervisor it was taken from (or
// one built with identical configuration).
//
// Incremental capture (DESIGN.md §10): a full snapshot also records the
// physical memory's per-frame write generations at capture time. Relative
// to such a baseline, HvDelta carries only the frames written since —
// identified by generation mismatch, no byte comparison — plus the changed
// frame-table entries and the (small) bookkeeping state in full. The pair
// (baseline, delta) densely describes a machine state:
//   Hypervisor::restore_delta(base)         — back to the baseline, copying
//                                             only frames dirtied since;
//   Hypervisor::snapshot_delta(base)        — capture the current state as
//                                             a delta against the baseline;
//   Hypervisor::restore_delta(base, delta)  — to the delta's state from
//                                             *any* current state, copying
//                                             only frames that can differ.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hv/hypervisor.hpp"

namespace ii::hv {

struct HvSnapshot {
  /// Full physical-memory image (page tables, IDT, guest data — everything).
  std::vector<std::uint8_t> memory;
  /// Per-frame PhysicalMemory write generation at capture time; together
  /// with `memory` this makes "changed since this snapshot" an O(frames)
  /// integer scan instead of an O(bytes) comparison.
  std::vector<std::uint64_t> frame_gens;
  /// Global PhysicalMemory generation at capture (>= every frame_gens[i]).
  std::uint64_t mem_generation = 0;

  /// Per-frame PageInfo, index = MFN.
  std::vector<PageInfo> frames;
  FrameTable::AllocatorState allocator;

  /// Value copies of every live domain, in DomainId order.
  std::vector<Domain> domains;
  DomainId next_domid = kDom0;

  GrantOps::State grants;
  EventChannelOps::State events;

  bool crashed = false;
  bool cpu_hung = false;
  std::vector<std::string> console;

  /// state_hash() at capture time.
  std::uint64_t hash = 0;
};

/// A machine state expressed against a baseline HvSnapshot: only the memory
/// frames written since the baseline (conservatively, by generation — a
/// rewrite of identical bytes is included), only the changed frame-table
/// entries, and the small bookkeeping state in full. Meaningful only
/// together with the baseline it was captured against.
struct HvDelta {
  /// The baseline's mem_generation, for shape/identity sanity checks.
  std::uint64_t base_generation = 0;

  /// MFNs whose contents may differ from the baseline, ascending.
  std::vector<std::uint64_t> mem_frames;
  /// mem_frames.size() * kPageSize bytes, frame-by-frame.
  std::vector<std::uint8_t> mem_bytes;
  /// The write generation of each listed frame at capture time.
  std::vector<std::uint64_t> mem_frame_gens;

  /// Frame-table entries differing from the baseline: (mfn, new PageInfo).
  std::vector<std::pair<std::uint64_t, PageInfo>> frames;

  FrameTable::AllocatorState allocator;
  std::vector<Domain> domains;
  DomainId next_domid = kDom0;
  GrantOps::State grants;
  EventChannelOps::State events;
  bool crashed = false;
  bool cpu_hung = false;
  std::vector<std::string> console;

  /// state_hash() at capture time.
  std::uint64_t hash = 0;
};

/// One immutable 4 KiB frame image, shared between every CoW node whose
/// state contains it. Nodes hold shared_ptr<const HvFrameBlock>; the last
/// node referencing a block frees it — no explicit forest bookkeeping.
struct HvFrameBlock {
  std::array<std::uint8_t, sim::kPageSize> bytes;
};

using HvFrameBlockRef = std::shared_ptr<const HvFrameBlock>;

/// A node of the copy-on-write snapshot *forest*: a machine state expressed
/// against a shared root HvSnapshot, like HvDelta, but with the frame
/// payloads factored into refcounted blocks so sibling states (children of
/// one parent that an op left mostly untouched) share the frames the op
/// did not write instead of each carrying a private copy. Unlike HvDelta a
/// CoW node records no write generations: it is machine-portable by
/// construction and always restored through the foreign-safe write path.
struct HvCowState {
  /// Frames whose contents may differ from the root, ascending by MFN.
  /// Blocks are shared with the parent node where the capture proved the
  /// frame unchanged since the parent (write generation <= the capture
  /// marker), freshly materialized otherwise.
  std::vector<std::pair<std::uint64_t, HvFrameBlockRef>> mem_frames;

  /// Frame-table entries differing from the root: (mfn, new PageInfo).
  std::vector<std::pair<std::uint64_t, PageInfo>> frames;

  FrameTable::AllocatorState allocator;
  std::vector<Domain> domains;
  DomainId next_domid = kDom0;
  GrantOps::State grants;
  EventChannelOps::State events;
  bool crashed = false;
  bool cpu_hung = false;
  std::vector<std::string> console;

  /// state_hash() at capture time.
  std::uint64_t hash = 0;

  /// Frames this node materialized itself (mem_frames entries not aliased
  /// from the parent). Deterministic — a function of (parent, op), not of
  /// which machine captured the node — so the checker's frontier byte
  /// accounting can budget on it.
  std::uint64_t owned_frames = 0;
};

}  // namespace ii::hv
