// Cloneable, hashable hypervisor state snapshots.
//
// The Hypervisor itself is non-copyable (it owns callbacks and is wired
// into shared PhysicalMemory), but everything an intrusion — or a hypercall
// — can mutate is plain data: the memory image, the frame table, the
// domains, grant and event-channel bookkeeping, and the liveness flags.
// HvSnapshot captures exactly that set as a value, so the bounded model
// checker (src/analysis) can push a state on its work queue, explore one
// successor, and restore; and tests can assert byte-precise state
// equivalence after restore.
//
// A snapshot does NOT capture boot-time constants (Xen's own tables, the
// IDT base, default handlers, the version policy, registered sinks and
// executors): those never change after construction, which is why a
// snapshot may only be restored onto the Hypervisor it was taken from (or
// one built with identical configuration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/hypervisor.hpp"

namespace ii::hv {

struct HvSnapshot {
  /// Full physical-memory image (page tables, IDT, guest data — everything).
  std::vector<std::uint8_t> memory;

  /// Per-frame PageInfo, index = MFN.
  std::vector<PageInfo> frames;
  FrameTable::AllocatorState allocator;

  /// Value copies of every live domain, in DomainId order.
  std::vector<Domain> domains;
  DomainId next_domid = kDom0;

  GrantOps::State grants;
  EventChannelOps::State events;

  bool crashed = false;
  bool cpu_hung = false;
  std::vector<std::string> console;

  /// state_hash() at capture time.
  std::uint64_t hash = 0;
};

}  // namespace ii::hv
