// The §IV-D field study: 100 memory-related Xen security advisories
// classified by the abusive functionalities an attacker can obtain.
//
// The paper randomly selected 100 CVEs from the Xen Security Advisory list
// and assessed each against all available metadata (advisory text, NVD/CVE
// records, patches, mailing lists). This module carries that study as a
// machine-readable dataset: the anchor records are real, well-documented
// advisories (XSA-148, XSA-182, XSA-212, XSA-133/VENOM, XSA-387, XSA-393,
// CVE-2019-17343, CVE-2020-27672, ...); the remainder are synthesized
// records representative of the advisory corpus, constructed so the
// aggregate counts reproduce Table I (see EXPERIMENTS.md for which Table I
// cells were unreadable in the source text and how they were filled).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model_checker.hpp"
#include "core/abusive_functionality.hpp"
#include "core/intrusion_model.hpp"

namespace ii::cvedb {

struct AdvisoryRecord {
  std::string xsa_id;      ///< "XSA-212" (empty when only a CVE id exists)
  std::string cve_id;      ///< "CVE-2017-7228"
  int year = 0;
  std::string component;   ///< hypervisor subsystem the fault lives in
  std::string summary;     ///< one-line advisory digest
  /// One or more functionalities: "some CVEs can have more than one abusive
  /// functionality depending on how they are exploited" (§IV-D).
  std::vector<core::AbusiveFunctionality> functionalities;
};

/// The 100 records of the study.
[[nodiscard]] const std::vector<AdvisoryRecord>& study_records();

/// The study record anchoring `xsa_id` ("XSA-148"); nullptr when the study
/// has no such record. Stable pointer into study_records().
[[nodiscard]] const AdvisoryRecord* find_by_xsa(const std::string& xsa_id);

/// The anchor advisory behind one of the model checker's erroneous-state
/// families, resolved against the study records — how the fuzzer ties a
/// surviving state back to the §IV-D taxonomy. Returns nullptr for
/// ErroneousStateClass::Other: that is the interesting case, a surviving
/// state no advisory in the study covers (a candidate new intrusion model).
[[nodiscard]] const AdvisoryRecord* advisory_for_class(
    analysis::ErroneousStateClass c);

/// Aggregated classification (Table I's content).
struct FunctionalityCount {
  core::AbusiveFunctionality functionality{};
  int count = 0;
};

struct TableOne {
  /// Per-functionality counts, in Table I row order.
  std::vector<FunctionalityCount> rows;
  /// Assignment totals per class (the "— N CVEs" section headers).
  [[nodiscard]] int class_total(core::FunctionalityClass fc) const;
  /// Total functionality assignments (> number of records; §IV-D).
  [[nodiscard]] int total_assignments() const;
};

/// Classify a record set into Table I form.
[[nodiscard]] TableOne classify(const std::vector<AdvisoryRecord>& records);

/// ASCII rendering in the paper's layout (class headers + rows).
[[nodiscard]] std::string render_table1(const TableOne& table);

// ------------------------------------------------- intrusion-model derivation

/// One intrusion model generalized from the study: "the essential
/// characteristics that can be generalized from a collection of exploits"
/// (§III-B). Grouping key: (target component, abusive functionality).
struct DerivedModel {
  core::IntrusionModel model;
  int supporting_advisories = 0;
  /// Up to three representative advisory ids behind the model.
  std::vector<std::string> examples;
};

/// Abstract the record set into deduplicated intrusion models with support
/// counts — the "continuous modeling of new knowledge on vulnerabilities"
/// step the paper's §III-B calls for.
[[nodiscard]] std::vector<DerivedModel> derive_intrusion_models(
    const std::vector<AdvisoryRecord>& records);

[[nodiscard]] std::string render_model_catalogue(
    const std::vector<DerivedModel>& models);

}  // namespace ii::cvedb
