#include "cvedb/advisories.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/intrusion_model.hpp"

namespace ii::cvedb {

using core::AbusiveFunctionality;
using core::FunctionalityClass;

namespace {

using AF = AbusiveFunctionality;

/// Anchor records: real, well-documented advisories, including every one
/// the paper's text discusses.
std::vector<AdvisoryRecord> anchor_records() {
  return {
      {"XSA-148", "CVE-2015-7835", 2015, "memory management",
       "missing PSE check lets PV guests create writable superpage mappings "
       "over arbitrary machine memory",
       {AF::GuestWritablePageTableEntry}},
      {"XSA-182", "CVE-2016-6258", 2016, "memory management",
       "faulty L4 fast-path validation permits writable linear page-table "
       "mappings",
       {AF::GuestWritablePageTableEntry}},
      {"XSA-212", "CVE-2017-7228", 2017, "memory management",
       "memory_exchange() misses the output-handle range check, giving PV "
       "guests an arbitrary hypervisor-memory write",
       {AF::WriteUnauthorizedArbitraryMemory}},
      {"XSA-302", "CVE-2019-18424", 2019, "memory management",
       "stale DMA mappings after PCI device reassignment allow writes into "
       "freed page-table memory",
       {AF::WriteUnauthorizedArbitraryMemory}},
      {"XSA-133", "CVE-2015-3456", 2015, "device emulation",
       "VENOM: QEMU floppy controller buffer overflow corrupts host-process "
       "memory from a guest",
       {AF::WriteUnauthorizedMemory}},
      {"XSA-387", "", 2021, "grant tables",
       "grant table v2 status pages remain accessible after downgrade to v1",
       {AF::KeepPageAccess}},
      {"XSA-393", "", 2021, "memory management",
       "XENMEM_decrease_reservation after cache maintenance leaves the guest "
       "with access to a removed page",
       {AF::KeepPageAccess}},
      // The two advisories §IV-D names as carrying more than one abusive
      // functionality depending on how they are exploited.
      {"", "CVE-2019-17343", 2019, "memory management",
       "unvalidated mapping size in compat hypercall: corrupts adjacent "
       "allocations or faults the hypervisor depending on offset",
       {AF::WriteUnauthorizedMemory, AF::InduceMemoryException}},
      {"", "CVE-2020-27672", 2020, "memory management",
       "race in grant-table map/unmap: usable for R/W of freed pages or to "
       "wedge the remap path",
       {AF::ReadWriteUnauthorizedMemory, AF::InduceHangState}},
  };
}

/// Remaining dual-functionality records (synthesized, representative).
std::vector<AdvisoryRecord> dual_records() {
  return {
      {"XSA-076", "CVE-2013-4368", 2013, "memory management",
       "outs instruction emulation leaks stack data; crafted segment "
       "descriptors also reach a BUG() path",
       {AF::ReadUnauthorizedMemory, AF::InduceFatalException}},
      {"XSA-240", "CVE-2017-15595", 2017, "memory management",
       "unbounded recursion in linear page-table de-typing corrupts the "
       "mapping hierarchy and can live-lock a CPU",
       {AF::CorruptVirtualMemoryMapping, AF::InduceHangState}},
      {"XSA-274", "CVE-2018-14678", 2018, "memory management",
       "L1TF-era PV pagetable shortcut leaves a guest-writable entry usable "
       "for targeted hypervisor writes",
       {AF::GuestWritablePageTableEntry,
        AF::WriteUnauthorizedArbitraryMemory}},
      {"XSA-230", "CVE-2017-12137", 2017, "grant tables",
       "grant map counting error keeps foreign frames mapped and leaks their "
       "contents to the holder",
       {AF::KeepPageAccess, AF::ReadUnauthorizedMemory}},
      {"XSA-206", "CVE-2017-7189", 2017, "memory management",
       "xenstore transaction replay lets a guest balloon unbounded memory "
       "and starve sibling domains into stalls",
       {AF::UncontrolledMemoryAllocation, AF::InduceHangState}},
      {"XSA-247", "CVE-2017-17044", 2017, "memory management",
       "missing error path in populate-on-demand drops pages from the P2M "
       "and fails subsequent legitimate mappings",
       {AF::DecreasePageMappingAvailability, AF::FailMemoryMapping}},
  };
}

struct Template {
  const char* component;
  const char* summary;
};

/// Summary templates per functionality for the synthesized remainder of the
/// corpus; cycled deterministically.
const std::map<AF, std::vector<Template>>& templates() {
  static const std::map<AF, std::vector<Template>> t{
      {AF::ReadUnauthorizedMemory,
       {{"memory management",
         "hypercall argument padding copied back uninitialized, leaking "
         "hypervisor stack bytes"},
        {"device emulation",
         "emulated device returns stale buffer contents from a previous "
         "guest's I/O"},
        {"grant tables",
         "grant copy reads beyond the granted range into adjacent frames"}}},
      {AF::WriteUnauthorizedMemory,
       {{"device emulation",
         "bounds error in emulated DMA descriptor processing overwrites "
         "adjacent heap allocations"},
        {"memory management",
         "off-by-one in compat translation writes one entry past a mapping "
         "array"}}},
      {AF::WriteUnauthorizedArbitraryMemory,
       {{"memory management",
         "unvalidated guest handle in a memory-op subcommand yields a "
         "write-what-where condition (CWE-123)"}}},
      {AF::ReadWriteUnauthorizedMemory,
       {{"memory management",
         "use-after-free of a foreign mapping leaves full R/W access to a "
         "recycled frame"}}},
      {AF::FailMemoryAccess,
       {{"memory management",
         "error path mishandling causes legitimate guest accesses to fail "
         "unpredictably"}}},
      {AF::CorruptVirtualMemoryMapping,
       {{"memory management",
         "TLB flush ordering bug leaves stale translations pointing at "
         "reassigned frames"}}},
      {AF::CorruptPageReference,
       {{"memory management",
         "refcount imbalance on type change corrupts a page's ownership "
         "accounting"}}},
      {AF::DecreasePageMappingAvailability,
       {{"memory management",
         "leaked page references prevent frames from ever being remapped"}}},
      {AF::GuestWritablePageTableEntry,
       {{"memory management",
         "validation gap leaves a page-table page mapped writable by the "
         "guest that owns it"}}},
      {AF::FailMemoryMapping,
       {{"memory management",
         "mapping operation fails silently under contention, leaving the "
         "requested range absent"}}},
      {AF::UncontrolledMemoryAllocation,
       {{"memory management",
         "missing quota check lets a guest drive unbounded xenheap "
         "allocations"}}},
      {AF::KeepPageAccess,
       {{"grant tables",
         "unmap path skips a release, leaving the guest with access to a "
         "page returned to Xen"},
        {"memory management",
         "decrease-reservation race retains a mapping of a freed page"}}},
      {AF::InduceFatalException,
       {{"memory management",
         "reachable ASSERT/BUG on a crafted hypercall argument panics the "
         "host"}}},
      {AF::InduceMemoryException,
       {{"memory management",
         "unaligned access path raises an unhandled fault in hypervisor "
         "context"}}},
      {AF::InduceHangState,
       {{"memory management",
         "long-running preemption-free loop over guest-controlled ranges "
         "stalls the CPU"},
        {"scheduler",
         "livelock between vCPU pause and destroy paths hangs the domain"},
        {"grant tables",
         "maptrack contention spin never yields, wedging the pCPU"}}},
      {AF::UncontrolledArbitraryInterruptRequests,
       {{"interrupt handling",
         "event-channel mask bypass lets a guest raise interrupt storms at "
         "arbitrary vectors"}}},
  };
  return t;
}

/// Table I target counts (see EXPERIMENTS.md for the inferred cells).
const std::map<AF, int>& target_counts() {
  static const std::map<AF, int> c{
      {AF::ReadUnauthorizedMemory, 12},
      {AF::WriteUnauthorizedMemory, 9},
      {AF::WriteUnauthorizedArbitraryMemory, 6},
      {AF::ReadWriteUnauthorizedMemory, 5},
      {AF::FailMemoryAccess, 3},
      {AF::CorruptVirtualMemoryMapping, 4},
      {AF::CorruptPageReference, 4},
      {AF::DecreasePageMappingAvailability, 5},
      {AF::GuestWritablePageTableEntry, 8},
      {AF::FailMemoryMapping, 2},
      {AF::UncontrolledMemoryAllocation, 6},
      {AF::KeepPageAccess, 11},
      {AF::InduceFatalException, 6},
      {AF::InduceMemoryException, 5},
      {AF::InduceHangState, 20},
      {AF::UncontrolledArbitraryInterruptRequests, 2},
  };
  return c;
}

std::vector<AdvisoryRecord> build_records() {
  std::vector<AdvisoryRecord> records = anchor_records();
  for (auto& d : dual_records()) records.push_back(d);

  // Count assignments already covered by the anchors/duals.
  std::map<AF, int> have;
  for (const auto& r : records) {
    for (const AF af : r.functionalities) ++have[af];
  }

  // Synthesize the remainder: deterministic ids/years, cycling templates.
  int synth_index = 0;
  for (const AF af : core::kAllAbusiveFunctionalities) {
    const int want = target_counts().at(af);
    for (int i = have[af]; i < want; ++i, ++synth_index) {
      const auto& tpl_list = templates().at(af);
      const Template& tpl = tpl_list[static_cast<std::size_t>(i) %
                                     tpl_list.size()];
      AdvisoryRecord rec{};
      std::ostringstream xsa, cve;
      xsa << "XSA-S" << 100 + synth_index;  // 'S' marks synthesized records
      const int year = 2012 + synth_index % 10;
      cve << "CVE-" << year << "-9" << 1000 + synth_index;
      rec.xsa_id = xsa.str();
      rec.cve_id = cve.str();
      rec.year = year;
      rec.component = tpl.component;
      rec.summary = tpl.summary;
      rec.functionalities = {af};
      records.push_back(std::move(rec));
    }
  }
  return records;
}

}  // namespace

const std::vector<AdvisoryRecord>& study_records() {
  static const std::vector<AdvisoryRecord> records = build_records();
  return records;
}

const AdvisoryRecord* find_by_xsa(const std::string& xsa_id) {
  for (const AdvisoryRecord& r : study_records()) {
    if (r.xsa_id == xsa_id) return &r;
  }
  return nullptr;
}

const AdvisoryRecord* advisory_for_class(analysis::ErroneousStateClass c) {
  using ESC = analysis::ErroneousStateClass;
  switch (c) {
    case ESC::Xsa148SuperpageWindow: return find_by_xsa("XSA-148");
    case ESC::Xsa182WritableSelfMap: return find_by_xsa("XSA-182");
    case ESC::Xsa212IdtClobber: return find_by_xsa("XSA-212");
    case ESC::Xsa387StaleGrantStatus: return find_by_xsa("XSA-387");
    case ESC::Other: return nullptr;
  }
  return nullptr;
}

int TableOne::class_total(FunctionalityClass fc) const {
  int total = 0;
  for (const auto& row : rows) {
    if (core::class_of(row.functionality) == fc) total += row.count;
  }
  return total;
}

int TableOne::total_assignments() const {
  int total = 0;
  for (const auto& row : rows) total += row.count;
  return total;
}

TableOne classify(const std::vector<AdvisoryRecord>& records) {
  std::map<AF, int> counts;
  for (const auto& r : records) {
    for (const AF af : r.functionalities) ++counts[af];
  }
  TableOne table;
  for (const AF af : core::kAllAbusiveFunctionalities) {
    table.rows.push_back({af, counts[af]});
  }
  return table;
}

namespace {

core::TargetComponent component_of(const std::string& name) {
  if (name == "grant tables") return core::TargetComponent::GrantTables;
  if (name == "device emulation") return core::TargetComponent::IoEmulation;
  if (name == "interrupt handling") {
    return core::TargetComponent::InterruptHandling;
  }
  if (name == "scheduler") return core::TargetComponent::Scheduler;
  return core::TargetComponent::MemoryManagement;
}

core::InteractionInterface interface_of(core::TargetComponent component) {
  switch (component) {
    case core::TargetComponent::IoEmulation:
      return core::InteractionInterface::IoRequest;
    case core::TargetComponent::InterruptHandling:
      return core::InteractionInterface::EventChannel;
    default:
      return core::InteractionInterface::Hypercall;
  }
}

std::string id_of(const AdvisoryRecord& rec) {
  return rec.xsa_id.empty() ? rec.cve_id : rec.xsa_id;
}

}  // namespace

std::vector<DerivedModel> derive_intrusion_models(
    const std::vector<AdvisoryRecord>& records) {
  // Grouping key: (component, functionality) — the two IM dimensions the
  // study data carries. The interaction interface follows the component;
  // the triggering source is the study's threat model (a guest).
  std::map<std::pair<core::TargetComponent, AF>, DerivedModel> groups;
  for (const AdvisoryRecord& rec : records) {
    const core::TargetComponent component = component_of(rec.component);
    for (const AF af : rec.functionalities) {
      DerivedModel& derived = groups[{component, af}];
      if (derived.supporting_advisories == 0) {
        derived.model.source = core::TriggeringSource::UnprivilegedGuest;
        derived.model.component = component;
        derived.model.interface = interface_of(component);
        derived.model.functionality = af;
        derived.model.erroneous_state = rec.summary;
      }
      ++derived.supporting_advisories;
      if (derived.examples.size() < 3) {
        derived.examples.push_back(id_of(rec));
      }
    }
  }
  std::vector<DerivedModel> out;
  out.reserve(groups.size());
  for (auto& [key, derived] : groups) out.push_back(std::move(derived));
  std::sort(out.begin(), out.end(),
            [](const DerivedModel& a, const DerivedModel& b) {
              return a.supporting_advisories > b.supporting_advisories;
            });
  return out;
}

std::string render_model_catalogue(const std::vector<DerivedModel>& models) {
  std::ostringstream os;
  os << "derived intrusion models (" << models.size() << "):\n";
  for (const DerivedModel& derived : models) {
    os << "  [" << derived.supporting_advisories << " advisories] "
       << to_string(derived.model.component) << " / "
       << to_string(derived.model.functionality) << " via "
       << to_string(derived.model.interface) << "  (e.g.";
    for (const std::string& id : derived.examples) os << ' ' << id;
    os << ")\n";
  }
  return os.str();
}

std::string render_table1(const TableOne& table) {
  std::ostringstream os;
  os << "ABUSIVE FUNCTIONALITIES OBTAINED FROM ACTIVATING XEN "
        "VULNERABILITIES\n";
  FunctionalityClass current{};
  bool first = true;
  for (const auto& row : table.rows) {
    const FunctionalityClass fc = core::class_of(row.functionality);
    if (first || fc != current) {
      os << "---- " << core::to_string(fc) << " -- "
         << table.class_total(fc) << " CVEs ----\n";
      current = fc;
      first = false;
    }
    char buf[8];
    std::snprintf(buf, sizeof buf, "%02d", row.count);
    os << "  " << core::to_string(row.functionality);
    const std::size_t pad = 48 - std::min<std::size_t>(
                                     48, core::to_string(row.functionality)
                                             .size());
    os << std::string(pad, ' ') << buf << "\n";
  }
  os << "total functionality assignments: " << table.total_assignments()
     << " over " << study_records().size() << " advisories\n";
  return os.str();
}

}  // namespace ii::cvedb
