// Device model: the QEMU-like emulator process behind a guest's devices.
//
// This substrate exists because the paper's §III-A walks through XSA-133
// (VENOM, CVE-2015-3456) as *the* motivating example of an intrusion: "a
// fault in the floppy disk controller (FDC) of the QEMU hypervisor ...
// an internal buffer of the FDC overflows, and the hypervisor enters an
// erroneous state where memory that should be inaccessible is corrupted",
// and §III-B describes the corresponding injection: "the intrusion
// injection tool could change the QEMU process to allow the injection of
// the corresponding error, e.g., by overwriting the FDC request handler
// method".
//
// Model: one DeviceModel per served guest, its process memory held in a
// page of dom0 (where the real QEMU runs), laid out as
//
//   [ 0x000 .. 0x040 )  controller state (phase, command, counters)
//   [ 0x040 .. 0x240 )  the 512-byte command FIFO
//   [ 0x240 .. 0x2C0 )  the command-dispatch table (16 u64 slots)
//
// so that (a) the VENOM overflow — FIFO writes without a bounds check —
// naturally runs into the dispatch table, and (b) the injector can
// reproduce the same erroneous state with one physical write into dom0's
// memory. A corrupted dispatch slot is "executed" on the next matching
// command: attacker bytes in the FIFO are decoded as a guest::Payload and
// run with the device model's privilege (root in dom0). The hardened
// device model checksums the table before every dispatch and aborts on
// mismatch instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "guest/kernel.hpp"

namespace ii::dm {

/// FDC I/O ports (the classic ISA assignments).
inline constexpr std::uint16_t kFdcDorPort = 0x3F2;   ///< digital output
inline constexpr std::uint16_t kFdcMsrPort = 0x3F4;   ///< main status (read)
inline constexpr std::uint16_t kFdcFifoPort = 0x3F5;  ///< data FIFO

/// FDC commands the model implements (subset of the real controller).
inline constexpr std::uint8_t kCmdSpecify = 0x03;
inline constexpr std::uint8_t kCmdReadId = 0x0A;
inline constexpr std::uint8_t kCmdConfigure = 0x13;
/// The VENOM vector: DRIVE SPECIFICATION accepts parameter bytes until a
/// terminator with the DONE bit (0x80) arrives.
inline constexpr std::uint8_t kCmdDriveSpecification = 0x8E;

/// Process-memory layout of the controller (offsets into the arena page).
struct FdcLayout {
  static constexpr std::uint64_t kStateOffset = 0x000;
  static constexpr std::uint64_t kFifoOffset = 0x040;
  static constexpr std::uint64_t kFifoSize = 512;
  /// Where attacks park their payload inside the FIFO: past the first few
  /// bytes, which later (trigger) commands overwrite with parameters.
  static constexpr std::uint64_t kPayloadFifoOffset = 16;
  static constexpr std::uint64_t kHandlerTableOffset =
      kFifoOffset + kFifoSize;  // directly after the FIFO — VENOM's victim
  static constexpr unsigned kHandlerSlots = 16;
  /// A legitimate dispatch-table entry: magic | command opcode.
  static constexpr std::uint64_t kHandlerMagic = 0xD15A7C4000000000ULL;
  [[nodiscard]] static constexpr std::uint64_t handler_value(
      std::uint8_t opcode) {
    return kHandlerMagic | opcode;
  }
  [[nodiscard]] static constexpr unsigned slot_of(std::uint8_t opcode) {
    return opcode % kHandlerSlots;
  }
};

/// Result of one guest I/O operation against the device model.
enum class IoResult {
  Ok,
  Ignored,        ///< port not handled
  DeviceAborted,  ///< the DM killed itself (integrity check fired)
};

class DeviceModel {
 public:
  /// Serve `guest`, with the emulator process living in `host` (dom0):
  /// allocates one host page as the process arena and initializes the
  /// controller.
  DeviceModel(guest::GuestKernel& host, guest::GuestKernel& guest);

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] guest::GuestKernel& served_guest() { return *guest_; }

  /// Machine address of the emulator's process arena (what the injector
  /// targets) and of the dispatch table inside it.
  [[nodiscard]] sim::Paddr arena_paddr() const;
  [[nodiscard]] sim::Paddr handler_table_paddr() const {
    return arena_paddr() + FdcLayout::kHandlerTableOffset;
  }

  /// Guest port I/O (in HVM, these trap to the device model).
  IoResult outb(std::uint16_t port, std::uint8_t value);
  [[nodiscard]] std::optional<std::uint8_t> inb(std::uint16_t port);

  /// Number of payloads the DM executed through corrupted dispatch slots.
  [[nodiscard]] unsigned hijacked_dispatches() const { return hijacked_; }

  /// True when the dispatch table deviates from its pristine contents —
  /// the XSA-133 erroneous state.
  [[nodiscard]] bool handler_table_corrupted() const;

 private:
  // Arena accessors (the "process memory" of the emulator).
  [[nodiscard]] std::uint8_t arena_u8(std::uint64_t offset) const;
  void arena_set_u8(std::uint64_t offset, std::uint8_t value);
  [[nodiscard]] std::uint64_t arena_u64(std::uint64_t offset) const;
  void arena_set_u64(std::uint64_t offset, std::uint64_t value);

  void reset_controller();
  IoResult write_fifo(std::uint8_t value);
  IoResult dispatch(std::uint8_t opcode);
  void abort_device(const std::string& reason);

  guest::GuestKernel* host_;
  guest::GuestKernel* guest_;
  sim::Pfn arena_pfn_{};
  bool alive_ = true;
  unsigned hijacked_ = 0;

  // Controller phase (kept in C++ for clarity; counters live in the arena).
  enum class Phase { Idle, Parameters } phase_ = Phase::Idle;
  std::uint8_t command_ = 0;
  std::uint32_t expected_params_ = 0;
  std::uint32_t data_pos_ = 0;  ///< FIFO write index — VENOM's variable
};

}  // namespace ii::dm
