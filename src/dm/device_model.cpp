#include "dm/device_model.hpp"

#include <stdexcept>

#include "guest/payload.hpp"

namespace ii::dm {

DeviceModel::DeviceModel(guest::GuestKernel& host, guest::GuestKernel& guest)
    : host_{&host}, guest_{&guest} {
  const auto pfn = host.alloc_pfn();
  if (!pfn) throw std::runtime_error{"device model: dom0 out of pages"};
  arena_pfn_ = *pfn;
  reset_controller();
}

sim::Paddr DeviceModel::arena_paddr() const {
  return sim::mfn_to_paddr(*host_->pfn_to_mfn(arena_pfn_));
}

std::uint8_t DeviceModel::arena_u8(std::uint64_t offset) const {
  std::uint8_t v = 0;
  host_->hv().memory().read(arena_paddr() + offset, {&v, 1});
  return v;
}

void DeviceModel::arena_set_u8(std::uint64_t offset, std::uint8_t value) {
  host_->hv().memory().write(arena_paddr() + offset, {&value, 1});
}

std::uint64_t DeviceModel::arena_u64(std::uint64_t offset) const {
  return host_->hv().memory().read_u64(arena_paddr() + offset);
}

void DeviceModel::arena_set_u64(std::uint64_t offset, std::uint64_t value) {
  host_->hv().memory().write_u64(arena_paddr() + offset, value);
}

void DeviceModel::reset_controller() {
  for (std::uint64_t i = 0; i < sim::kPageSize; i += 8) arena_set_u64(i, 0);
  for (unsigned s = 0; s < FdcLayout::kHandlerSlots; ++s) {
    // Populate the dispatch table with the opcodes that hash to each slot.
    arena_set_u64(FdcLayout::kHandlerTableOffset + s * 8,
                  FdcLayout::handler_value(static_cast<std::uint8_t>(s)));
  }
  // The commands the model serves get their proper entries.
  for (const std::uint8_t op : {kCmdSpecify, kCmdReadId, kCmdConfigure,
                                kCmdDriveSpecification}) {
    arena_set_u64(FdcLayout::kHandlerTableOffset + FdcLayout::slot_of(op) * 8,
                  FdcLayout::handler_value(op));
  }
  phase_ = Phase::Idle;
  data_pos_ = 0;
}

bool DeviceModel::handler_table_corrupted() const {
  for (unsigned s = 0; s < FdcLayout::kHandlerSlots; ++s) {
    const std::uint64_t v = arena_u64(FdcLayout::kHandlerTableOffset + s * 8);
    if ((v & ~0xFFULL) != FdcLayout::kHandlerMagic) return true;
  }
  return false;
}

void DeviceModel::abort_device(const std::string& reason) {
  alive_ = false;
  host_->printk("qemu-dm[" + std::to_string(guest_->id()) +
                "]: ABORT: " + reason);
}

IoResult DeviceModel::outb(std::uint16_t port, std::uint8_t value) {
  if (!alive_) return IoResult::DeviceAborted;
  switch (port) {
    case kFdcDorPort:
      return IoResult::Ok;  // motor/reset bits: accepted, not modelled
    case kFdcFifoPort:
      return write_fifo(value);
    default:
      return IoResult::Ignored;
  }
}

std::optional<std::uint8_t> DeviceModel::inb(std::uint16_t port) {
  if (!alive_) return std::nullopt;
  if (port == kFdcMsrPort) {
    // RQM | DIO clear: "ready for your bytes" — all the driver checks.
    return 0x80;
  }
  return std::nullopt;
}

IoResult DeviceModel::write_fifo(std::uint8_t value) {
  if (phase_ == Phase::Idle) {
    command_ = value;
    data_pos_ = 0;
    switch (value) {
      case kCmdSpecify: expected_params_ = 2; break;
      case kCmdConfigure: expected_params_ = 3; break;
      case kCmdReadId: expected_params_ = 1; break;
      case kCmdDriveSpecification:
        expected_params_ = 0xFFFFFFFF;  // until the DONE bit — see below
        break;
      default:
        // Unknown command: dispatch immediately (invalid-command path).
        return dispatch(value);
    }
    phase_ = Phase::Parameters;
    return IoResult::Ok;
  }

  // Parameter phase: accumulate into the FIFO at data_pos_.
  const std::uint64_t offset = FdcLayout::kFifoOffset + data_pos_;
  const bool in_bounds = data_pos_ < FdcLayout::kFifoSize;
  if (in_bounds || host_->hv().policy().fdc_unbounded_fifo) {
    // CVE-2015-3456: the vulnerable controller trusts data_pos_ and writes
    // past the FIFO's end — straight into the dispatch table.
    arena_set_u8(offset, value);
  }
  if (!in_bounds && !host_->hv().policy().fdc_unbounded_fifo) {
    // The fix: out-of-range bytes reset the controller.
    phase_ = Phase::Idle;
    data_pos_ = 0;
    return IoResult::Ok;
  }
  ++data_pos_;

  const bool done =
      command_ == kCmdDriveSpecification
          ? (value & 0x80) != 0            // DONE bit terminates the list
          : data_pos_ >= expected_params_;  // fixed-length commands
  if (done) {
    phase_ = Phase::Idle;
    return dispatch(command_);
  }
  return IoResult::Ok;
}

IoResult DeviceModel::dispatch(std::uint8_t opcode) {
  if (host_->hv().policy().dm_handler_integrity_check &&
      handler_table_corrupted()) {
    abort_device("dispatch-table integrity check failed");
    return IoResult::DeviceAborted;
  }
  const std::uint64_t slot =
      arena_u64(FdcLayout::kHandlerTableOffset +
                FdcLayout::slot_of(opcode) * 8);
  if ((slot & ~0xFFULL) == FdcLayout::kHandlerMagic) {
    return IoResult::Ok;  // legitimate handler: emulate and return
  }

  // Corrupted entry: control flow leaves the dispatch table. The attacker
  // parks a payload in the FIFO region (at kPayloadFifoOffset, clear of the
  // bytes trigger commands scribble); "jumping" to it means decoding and
  // running it with the device model's privilege — root in dom0.
  std::array<std::uint8_t, FdcLayout::kFifoSize - FdcLayout::kPayloadFifoOffset>
      fifo{};
  host_->hv().memory().read(
      arena_paddr() + FdcLayout::kFifoOffset + FdcLayout::kPayloadFifoOffset,
      fifo);
  if (const auto payload = guest::Payload::decode(fifo)) {
    ++hijacked_;
    host_->printk("qemu-dm[" + std::to_string(guest_->id()) +
                  "]: executing attacker payload (host privilege)");
    (void)host_->run_command(payload->command, /*uid=*/0);
    return IoResult::Ok;
  }
  abort_device("jump through corrupt dispatch entry into garbage");
  return IoResult::DeviceAborted;
}

}  // namespace ii::dm
