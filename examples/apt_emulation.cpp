// Multi-step attack (APT) emulation (paper §IX-B):
//
//   "Attackers exploit vulnerabilities and weaknesses to subvert the system
//    in multiple steps. Each step towards a system breach can be modeled as
//    an abusive functionality ... conceptually, a set of intrusion
//    injectors can emulate the outcomes of the tools that attackers use to
//    perform complex attacks (e.g., advanced persistent threats (APTs))."
//
// This example chains three injected erroneous states on one platform, each
// corresponding to one stage of a classic campaign, and narrates what the
// monitor sees after every stage:
//
//   stage 1 — reconnaissance: Read Unauthorized Memory (locate dom0's
//             fingerprintable pages from a co-tenant);
//   stage 2 — persistence:    implant the vDSO backdoor (the XSA-148
//             erroneous state) and collect the reverse shell;
//   stage 3 — spread:         link a payload into the shared Xen area and
//             detonate it in every domain (the XSA-212-priv state).
#include <cstdio>
#include <cstring>

#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "guest/payload.hpp"
#include "guest/platform.hpp"

int main() {
  using namespace ii;

  guest::PlatformConfig pc{};
  pc.version = hv::kXen48;  // fixed against all four paper CVEs
  guest::VirtualPlatform platform{pc};
  platform.dom0().fs().write("/root/root_msg", 0,
                             "Confidential content in root folder!");
  core::ArbitraryAccessInjector injector{platform.guest(0)};
  core::SystemMonitor monitor{platform};

  std::puts("== APT emulation: three chained erroneous states ==============");

  // ---- stage 1: reconnaissance --------------------------------------------
  std::puts("\n[stage 1] Read Unauthorized Memory: scanning for dom0");
  sim::Mfn dom0_start_info{};
  std::array<std::uint8_t, 0x60> head{};
  for (std::uint64_t f = 0; f < platform.memory().frame_count(); ++f) {
    if (!injector.read(sim::mfn_to_paddr(sim::Mfn{f}).raw(), head,
                       core::AddressMode::Physical)) {
      continue;
    }
    std::uint16_t domid = 0xFFFF;
    if (std::memcmp(head.data(), guest::StartInfoLayout::kMagic, 15) == 0) {
      std::memcpy(&domid, head.data() + guest::StartInfoLayout::kDomIdOffset,
                  sizeof domid);
      if (domid == hv::kDom0) {
        dom0_start_info = sim::Mfn{f};
        break;
      }
    }
  }
  std::printf("  dom0 start_info located at mfn 0x%llx\n",
              static_cast<unsigned long long>(dom0_start_info.raw()));

  // ---- stage 2: persistence -----------------------------------------------
  std::puts("\n[stage 2] implanting vDSO backdoor (persistence)");
  platform.attacker().listen(4242);
  guest::VdsoBackdoor backdoor{};
  backdoor.magic = guest::VdsoLayout::kBackdoorMagic;
  std::snprintf(backdoor.host, sizeof backdoor.host, "attacker");
  backdoor.port = 4242;
  const sim::Mfn vdso{dom0_start_info.raw() + 1};
  (void)injector.write(
      sim::mfn_to_paddr(vdso).raw() + guest::VdsoLayout::kBackdoorOffset,
      {reinterpret_cast<const std::uint8_t*>(&backdoor), sizeof backdoor},
      core::AddressMode::Physical);
  platform.dom0().invoke_vdso(0);  // routine dom0 activity trips the implant
  std::printf("  attacker holds root shell on dom0: %s\n",
              monitor.attacker_root_shell(4242) ? "YES" : "no");

  // ---- stage 3: spread -----------------------------------------------------
  std::puts("\n[stage 3] payload into shared Xen area, detonate everywhere");
  guest::GuestKernel& guest = platform.guest(0);
  const auto pmd_pfn = *guest.alloc_pfn();
  const auto l1_pfn = *guest.alloc_pfn();
  const auto payload_pfn = *guest.alloc_pfn();
  constexpr std::uint64_t kPUW =
      sim::Pte::kPresent | sim::Pte::kWritable | sim::Pte::kUser;
  (void)guest.write_u64(guest.pfn_va(l1_pfn),
                        sim::Pte::make(*guest.pfn_to_mfn(payload_pfn), kPUW)
                            .raw());
  (void)guest.write_u64(guest.pfn_va(pmd_pfn),
                        sim::Pte::make(*guest.pfn_to_mfn(l1_pfn), kPUW)
                            .raw());
  guest::Payload payload{};
  payload.command = "echo \"|$(id)|@$(hostname)\" > /tmp/apt_marker";
  std::vector<std::uint8_t> bytes(256);
  bytes.resize(payload.encode(bytes));
  (void)guest.write_virt(guest.pfn_va(payload_pfn), bytes);

  const std::uint64_t pud_slot =
      sim::mfn_to_paddr(platform.hv().xen_l3()).raw() + 300 * 8;
  (void)injector.write_u64(
      pud_slot,
      sim::Pte::make(*guest.pfn_to_mfn(pmd_pfn), kPUW).raw(),
      core::AddressMode::Physical);
  const sim::Vaddr handler = sim::compose_vaddr(256, 300, 0, 0);
  platform.hv().idt().write(0x90,
                            sim::IdtGate::interrupt_gate(handler.raw()));
  (void)guest.software_interrupt(0x90);
  std::printf("  /tmp/apt_marker in every domain: %s\n",
              monitor.file_in_all_domains("/tmp/apt_marker", "uid=0(root)")
                  ? "YES"
                  : "no");

  // ---- post-campaign assessment -------------------------------------------
  std::puts("\n== post-campaign monitor report ===============================");
  const core::Observation obs = monitor.observe(4);
  std::printf("hypervisor crashed: %s, audit findings: %zu\n",
              obs.hypervisor_crashed ? "yes" : "no",
              obs.audit.findings.size());
  for (const auto& finding : obs.audit.findings) {
    std::printf("  - %s: %s\n", to_string(finding.kind).c_str(),
                finding.detail.c_str());
  }
  std::puts(
      "\nEvery stage used only injected erroneous states — no vulnerability\n"
      "was exploited on this (fully patched) 4.8 platform. That is the\n"
      "paper's point: the defender can rehearse the whole campaign shape\n"
      "without possessing a single working exploit.");
  return 0;
}
