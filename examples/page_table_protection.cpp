// Evaluating a page-table protection mechanism (paper §III-C):
//
//   "Assuming a deployed mechanism to prevent unauthorized modification of
//    page tables, the effectiveness of this mechanism can be tested using
//    our approach. For this, we need to model different intrusions that
//    target unauthorized page-table changes and execute a testing campaign
//    injecting various erroneous states."
//
// The mechanism under test here is the page-table integrity auditor
// (ii::hv::audit_system) used as a periodic detector. The campaign injects
// a spectrum of write-what-where erroneous states (CWE-123) against
// different paging structures and reports, per intrusion-model instance,
// whether the detector catches the state.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/injector.hpp"
#include "core/intrusion_model.hpp"
#include "core/monitor.hpp"
#include "guest/platform.hpp"
#include "hv/audit.hpp"

namespace {

using namespace ii;

struct PageTableIntrusion {
  const char* name;
  core::IntrusionModel model;
  /// Injects the erroneous state; returns false if the injection itself
  /// was refused.
  std::function<bool(guest::VirtualPlatform&, core::Injector&)> inject;
};

std::vector<PageTableIntrusion> make_intrusions() {
  constexpr std::uint64_t kPUW =
      sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;
  const auto model = [](const char* state) {
    core::IntrusionModel m{};
    m.functionality = core::AbusiveFunctionality::GuestWritablePageTableEntry;
    m.erroneous_state = state;
    return m;
  };
  return {
      {"L1 entry -> own L1 (writable self-view)",
       model("guest-writable mapping of an L1 page"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto slot = g.l1_slot_paddr(sim::Pfn{5});
         return inj.write_u64(slot.raw(),
                              sim::Pte::make(g.l1_mfn(0), kPUW).raw(),
                              core::AddressMode::Physical);
       }},
      {"L1 entry -> own L4 (writable top-level)",
       model("guest-writable mapping of the L4 page"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto slot = g.l1_slot_paddr(sim::Pfn{6});
         return inj.write_u64(slot.raw(),
                              sim::Pte::make(g.l4_mfn(), kPUW).raw(),
                              core::AddressMode::Physical);
       }},
      {"L1 entry -> foreign domain frame",
       model("guest mapping of another tenant's memory"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto victim = *p.guest(1).pfn_to_mfn(sim::Pfn{3});
         const auto slot = g.l1_slot_paddr(sim::Pfn{7});
         return inj.write_u64(slot.raw(),
                              sim::Pte::make(victim, kPUW).raw(),
                              core::AddressMode::Physical);
       }},
      {"L1 entry -> hypervisor frame (IDT)",
       model("guest-writable mapping of a hypervisor frame"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto slot = g.l1_slot_paddr(sim::Pfn{8});
         return inj.write_u64(
             slot.raw(),
             sim::Pte::make(sim::paddr_to_mfn(p.hv().idt_base()), kPUW).raw(),
             core::AddressMode::Physical);
       }},
      {"L4 linear slot made writable",
       model("writable L4 self mapping"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto slot =
             sim::mfn_to_paddr(g.l4_mfn()) + hv::kLinearPtSlot * 8;
         return inj.write_u64(slot.raw(),
                              sim::Pte::make(g.l4_mfn(), kPUW).raw(),
                              core::AddressMode::Physical);
       }},
      {"PUD link into shared Xen L3",
       model("foreign PMD linked into the hypervisor's PUD"),
       [](guest::VirtualPlatform& p, core::Injector& inj) {
         guest::GuestKernel& g = p.guest(0);
         const auto pmd = *g.pfn_to_mfn(*g.alloc_pfn());
         const auto slot = sim::mfn_to_paddr(p.hv().xen_l3()) + 300 * 8;
         return inj.write_u64(slot.raw(),
                              sim::Pte::make(pmd, kPUW).raw(),
                              core::AddressMode::Physical);
       }},
  };
}

}  // namespace

int main() {
  const auto intrusions = make_intrusions();
  std::puts("== Page-table protection-mechanism evaluation =================");
  std::puts("mechanism under test: page-table integrity auditor\n");

  int detected = 0;
  for (const auto& intrusion : intrusions) {
    guest::PlatformConfig pc{};
    pc.version = hv::kXen413;
    guest::VirtualPlatform platform{pc};
    core::ArbitraryAccessInjector injector{platform.guest(0)};

    if (!intrusion.inject(platform, injector)) {
      std::printf("  %-42s injection refused (%s)\n", intrusion.name,
                  hv::errno_name(injector.last_rc()));
      continue;
    }
    const hv::AuditReport report = hv::audit_system(platform.hv());
    const bool caught = !report.clean();
    detected += caught;
    std::printf("  %-42s %s\n", intrusion.name,
                caught ? "DETECTED" : "missed");
    for (const auto& finding : report.findings) {
      std::printf("      -> %s (%s)\n", to_string(finding.kind).c_str(),
                  finding.detail.c_str());
    }
  }
  std::printf("\ndetector effectiveness: %d/%zu intrusion models detected\n",
              detected, intrusions.size());
  return 0;
}
