// Cross-version security assessment (the paper's RQ3 / §III-C scenario:
// "cloud provider X wants to evaluate how its virtualized environment would
// be affected by a vulnerability similar to one discovered elsewhere").
//
// Runs the full injection campaign against all three simulated releases and
// derives a simple comparative score: how many of the injected erroneous
// states each version *handles* without a security violation. The point of
// the exercise — and of the paper — is that this comparison requires no
// working exploit for the version under test.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "xsa/usecases.hpp"

int main() {
  using namespace ii;

  const auto cases = xsa::make_paper_use_cases();
  core::CampaignConfig config{};
  config.modes = {core::Mode::Injection};  // no exploits needed
  const core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  std::puts("== Injection campaign across releases =========================");
  for (const hv::XenVersion version : config.versions) {
    int injected = 0, violated = 0, handled = 0;
    std::printf("\nXen %s\n", version.to_string().c_str());
    for (const auto& cell : results) {
      if (cell.version != version) continue;
      ++injected;
      if (cell.violation) {
        ++violated;
      } else if (cell.handled()) {
        ++handled;
      }
      std::printf("  %-14s %s\n", cell.use_case.c_str(),
                  cell.violation       ? "VIOLATED"
                  : cell.handled()     ? "handled by the system"
                                       : "state not induced");
    }
    std::printf("  => %d/%d injected states handled\n", handled, injected);
  }

  std::puts(
      "\nAssessment: a higher handled-count under the same injected states\n"
      "indicates stronger intrusion-handling for this threat class. The\n"
      "4.13 release handles 2/4 — the paper traces this to the post-4.9\n"
      "removal of the guest-reachable linear-page-table mapping.");
  return 0;
}
