// Command-line campaign runner — the shape of the "open-source list of
// tests and experiments covering various Intrusion Models" the paper's
// conclusion calls for.
//
// Usage:
//   campaign_cli [--version 4.6|4.8|4.13] [--mode exploit|injection]
//                [--case NAME] [--csv] [--trace FILE.jsonl] [--list]
//                [--threads N] [--retries N] [--quarantine N]
//                [--budget N] [--steps N] [--recover] [--deterministic]
//                [--journal FILE.jsonl] [--resume]
//
// With no arguments it runs the full paper matrix and prints the RQ1 and
// Table III reports. --trace captures the full per-cell event stream and
// writes it as JSONL (one {"type":"trace",...} line per event, tagged with
// its cell, then one final {"type":"metrics",...} aggregate line).
//
// The robustness flags route the run through the CampaignSupervisor:
// --retries re-runs failed cells, --quarantine skips a use case after N
// consecutive failures, --budget/--steps bound each cell's hypercalls and
// trace steps, --recover triggers ReHype-style hypervisor recovery after a
// failed cell, and --journal/--resume make the campaign resumable — a
// killed run picks up where it left off and reproduces the identical
// report (byte-identical CSV with --deterministic).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/report.hpp"
#include "core/supervisor.hpp"
#include "obs/jsonl.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;

std::vector<std::unique_ptr<core::UseCase>> all_cases() {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

int usage() {
  std::puts(
      "usage: campaign_cli [--version 4.6|4.8|4.13] [--mode "
      "exploit|injection] [--case NAME] [--csv] [--trace FILE.jsonl] "
      "[--list]\n"
      "                    [--threads N] [--retries N] [--quarantine N] "
      "[--budget N] [--steps N]\n"
      "                    [--recover] [--deterministic] [--journal "
      "FILE.jsonl] [--resume] [--preflight]");
  return 2;
}

/// Stable cell tag for trace lines: "<use_case>@<version>/<mode>".
std::string cell_tag(const core::CellResult& cell) {
  return cell.use_case + "@" + cell.version.to_string() + "/" +
         to_string(cell.mode);
}

/// Parse a non-negative integer flag argument; returns false on garbage.
bool parse_unsigned(const char* s, unsigned long& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  out = std::strtoul(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  core::CampaignConfig config{};
  core::SupervisorConfig supervision{};
  std::string only_case;
  std::string trace_path;
  bool csv = false;
  bool preflight = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& use_case : all_cases()) {
        std::printf("%-14s %s\n", use_case->name().c_str(),
                    use_case->model().describe().c_str());
      }
      return 0;
    }
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.versions = {hv::kXen46};
      } else if (std::strcmp(v, "4.8") == 0) {
        config.versions = {hv::kXen48};
      } else if (std::strcmp(v, "4.13") == 0) {
        config.versions = {hv::kXen413};
      } else {
        return usage();
      }
    } else if (arg == "--mode") {
      const char* m = next();
      if (m == nullptr) return usage();
      if (std::strcmp(m, "exploit") == 0) {
        config.modes = {core::Mode::Exploit};
      } else if (std::strcmp(m, "injection") == 0) {
        config.modes = {core::Mode::Injection};
      } else {
        return usage();
      }
    } else if (arg == "--case") {
      const char* c = next();
      if (c == nullptr) return usage();
      only_case = c;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      const char* t = next();
      if (t == nullptr) return usage();
      trace_path = t;
      config.capture_trace = true;
    } else if (arg == "--threads") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n) || n == 0) return usage();
      supervision.threads = static_cast<unsigned>(n);
    } else if (arg == "--retries") {
      // --retries N means "N retries after the first attempt".
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      supervision.max_attempts = static_cast<unsigned>(n) + 1;
    } else if (arg == "--quarantine") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      supervision.quarantine_after = static_cast<unsigned>(n);
    } else if (arg == "--budget") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      config.max_cell_hypercalls = n;
    } else if (arg == "--steps") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      config.max_cell_steps = n;
    } else if (arg == "--recover") {
      config.attempt_recovery = true;
    } else if (arg == "--deterministic") {
      config.logical_time = true;
    } else if (arg == "--journal") {
      const char* j = next();
      if (j == nullptr) return usage();
      supervision.journal_path = j;
    } else if (arg == "--resume") {
      supervision.resume = true;
    } else if (arg == "--preflight") {
      preflight = true;
    } else {
      return usage();
    }
  }

  // Model-check every configured version policy (depth 2) before burning
  // time on cells: a policy that disagrees with its expectation makes the
  // campaign's verdicts meaningless, so refuse to start.
  if (preflight) {
    // Shard the checker over the same worker count the campaign will use
    // (0 = hardware concurrency); the verdict is thread-count independent.
    const core::PreflightReport report =
        core::Campaign{config}.preflight(/*depth=*/2, supervision.threads);
    for (const auto& v : report.versions) {
      std::printf(
          "preflight xen %-5s depth %u: %llu states, %llu violation(s)%s, "
          "expected %s -> %s\n",
          v.version.to_string().c_str(), report.depth,
          static_cast<unsigned long long>(v.states_explored),
          static_cast<unsigned long long>(v.violations_found),
          v.truncated ? " [TRUNCATED]" : "",
          v.expected_vulnerable ? "vulnerable" : "clean",
          v.ok() ? "ok" : "MISMATCH");
    }
    if (!report.ok()) {
      std::fprintf(stderr,
                   "preflight failed: version policy and validation engine "
                   "disagree; not running cells\n");
      return 1;
    }
  }

  if (supervision.resume && supervision.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal FILE\n");
    return 2;
  }

  // Validate --case up front (and fail fast on typos) with one probe set.
  if (!only_case.empty()) {
    bool known = false;
    for (const auto& use_case : all_cases()) {
      if (use_case->name() == only_case) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown use case '%s' (try --list)\n",
                   only_case.c_str());
      return 2;
    }
  }

  // Open the trace file up front so a bad path fails before the campaign
  // burns minutes running every cell.
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot open trace file '%s'\n",
                   trace_path.c_str());
      return 1;
    }
  }

  // Everything runs through the supervisor; with default supervision knobs
  // it degenerates to the plain sequential campaign.
  const auto factory = [&only_case] {
    auto cases = all_cases();
    if (only_case.empty()) return cases;
    std::vector<std::unique_ptr<core::UseCase>> filtered;
    for (auto& use_case : cases) {
      if (use_case->name() == only_case) filtered.push_back(std::move(use_case));
    }
    return filtered;
  };

  const core::CampaignSupervisor supervisor{config, supervision};
  std::vector<core::CellResult> results;
  try {
    results = supervisor.run(factory);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  // Campaign-wide aggregate: the deterministic merge of every cell's
  // metrics snapshot, in cell order.
  obs::MetricsRegistry aggregate;
  for (const auto& cell : results) aggregate.merge(cell.metrics);

  if (trace_out.is_open()) {
    for (const auto& cell : results) {
      obs::write_events(trace_out, cell.trace, cell_tag(cell));
    }
    obs::write_metrics(trace_out, aggregate.snapshot());
  }

  if (csv) {
    std::fputs(core::render_csv(results).c_str(), stdout);
    return 0;
  }
  std::fputs(core::render_rq1_table(results).c_str(), stdout);
  std::fputs(core::render_table3(results).c_str(), stdout);
  std::puts("\ncampaign metrics:");
  std::fputs(core::render_metrics_summary(aggregate.snapshot()).c_str(),
             stdout);
  std::puts("\nper-cell notes:");
  for (const auto& cell : results) {
    std::printf("%-14s %-9s xen %-5s err=%d viol=%d attempts=%u%s%s%s\n",
                cell.use_case.c_str(), to_string(cell.mode).c_str(),
                cell.version.to_string().c_str(), cell.err_state,
                cell.violation, cell.attempts,
                cell.handled() ? " (handled)" : "",
                cell.recovered ? " (recovered)" : "",
                cell.quarantined ? " (quarantined)" : "");
    if (cell.failed()) {
      std::printf("    ! %s\n", cell.failure.c_str());
    }
    for (const auto& note : cell.outcome.notes) {
      std::printf("    | %s\n", note.c_str());
    }
  }
  return 0;
}
