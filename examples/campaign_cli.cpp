// Command-line campaign runner — the shape of the "open-source list of
// tests and experiments covering various Intrusion Models" the paper's
// conclusion calls for.
//
// Usage:
//   campaign_cli [--version 4.6|4.8|4.13] [--mode exploit|injection]
//                [--case NAME] [--csv] [--list]
//
// With no arguments it runs the full paper matrix and prints the RQ1 and
// Table III reports.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/report.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;

std::vector<std::unique_ptr<core::UseCase>> all_cases() {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

int usage() {
  std::puts(
      "usage: campaign_cli [--version 4.6|4.8|4.13] [--mode "
      "exploit|injection] [--case NAME] [--csv] [--list]");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::CampaignConfig config{};
  std::string only_case;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& use_case : all_cases()) {
        std::printf("%-14s %s\n", use_case->name().c_str(),
                    use_case->model().describe().c_str());
      }
      return 0;
    }
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.versions = {hv::kXen46};
      } else if (std::strcmp(v, "4.8") == 0) {
        config.versions = {hv::kXen48};
      } else if (std::strcmp(v, "4.13") == 0) {
        config.versions = {hv::kXen413};
      } else {
        return usage();
      }
    } else if (arg == "--mode") {
      const char* m = next();
      if (m == nullptr) return usage();
      if (std::strcmp(m, "exploit") == 0) {
        config.modes = {core::Mode::Exploit};
      } else if (std::strcmp(m, "injection") == 0) {
        config.modes = {core::Mode::Injection};
      } else {
        return usage();
      }
    } else if (arg == "--case") {
      const char* c = next();
      if (c == nullptr) return usage();
      only_case = c;
    } else if (arg == "--csv") {
      csv = true;
    } else {
      return usage();
    }
  }

  auto cases = all_cases();
  if (!only_case.empty()) {
    std::vector<std::unique_ptr<core::UseCase>> filtered;
    for (auto& use_case : cases) {
      if (use_case->name() == only_case) filtered.push_back(std::move(use_case));
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "unknown use case '%s' (try --list)\n",
                   only_case.c_str());
      return 2;
    }
    cases = std::move(filtered);
  }

  const core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  if (csv) {
    std::fputs(core::render_csv(results).c_str(), stdout);
    return 0;
  }
  std::fputs(core::render_rq1_table(results).c_str(), stdout);
  std::fputs(core::render_table3(results).c_str(), stdout);
  std::puts("\nper-cell notes:");
  for (const auto& cell : results) {
    std::printf("%-14s %-9s xen %-5s err=%d viol=%d%s\n",
                cell.use_case.c_str(), to_string(cell.mode).c_str(),
                cell.version.to_string().c_str(), cell.err_state,
                cell.violation, cell.handled() ? " (handled)" : "");
    for (const auto& note : cell.outcome.notes) {
      std::printf("    | %s\n", note.c_str());
    }
  }
  return 0;
}
