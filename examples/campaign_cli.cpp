// Command-line campaign runner — the shape of the "open-source list of
// tests and experiments covering various Intrusion Models" the paper's
// conclusion calls for.
//
// Usage:
//   campaign_cli [--version 4.6|4.8|4.13] [--mode exploit|injection]
//                [--case NAME] [--csv] [--trace FILE.jsonl] [--list]
//                [--threads N] [--retries N] [--quarantine N]
//                [--budget N] [--steps N] [--recover] [--deterministic]
//                [--journal FILE.jsonl] [--resume]
//                [--profile] [--profile-wall] [--metrics-out FILE]
//                [--chrome-trace FILE] [--status-port N] [--status-hold SEC]
//                [--chaos-seed N] [--chaos-plan SPEC] [--chaos-log FILE]
//                [--backoff-us N]
//
// With no arguments it runs the full paper matrix and prints the RQ1 and
// Table III reports. --trace captures the full per-cell event stream and
// writes it as JSONL (one {"type":"trace",...} line per event, tagged with
// its cell, then one final {"type":"metrics",...} aggregate line).
//
// The robustness flags route the run through the CampaignSupervisor:
// --retries re-runs failed cells, --quarantine skips a use case after N
// consecutive failures, --budget/--steps bound each cell's hypercalls and
// trace steps, --recover triggers ReHype-style hypervisor recovery after a
// failed cell, and --journal/--resume make the campaign resumable — a
// killed run picks up where it left off and reproduces the identical
// report (byte-identical CSV with --deterministic).
//
// Telemetry (DESIGN.md §13):
//   --profile       print the deterministic span profile — per-cell
//                   acquire/restore/inject/monitor/recover work plus the
//                   supervisor's retry/quarantine/journal accounting;
//                   byte-identical at any --threads
//   --profile-wall  same tree with wall time and scheduling-dependent spans
//   --metrics-out   append the campaign-wide metrics aggregate as JSONL
//   --chrome-trace  write a Chrome trace-event JSON of every span instance
//   --status-port   serve /status and /metrics over TCP while the campaign
//                   runs (port 0 picks an ephemeral port, printed to stderr)
//   --status-hold   keep the status server up SEC seconds after the run
//                   finishes (CI smoke tests poll it)
//
// Chaos (DESIGN.md §14): --chaos-seed + --chaos-plan arm the deterministic
// fault-injection engine against the harness itself. A plan is a comma
// list of "point=permille" rates and "point@occurrence" single shots over
// the registered chaos points (see chaos.cpp). Same seed + same plan =>
// byte-identical fault schedule; --chaos-log writes that schedule after
// the run (including a killed one). A supervisor.kill fault exits with
// status 3 — the journal is intact and --resume continues the campaign.
// --backoff-us sets the supervisor's retry backoff base delay.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/chaos.hpp"
#include "core/report.hpp"
#include "core/supervisor.hpp"
#include "net/status_server.hpp"
#include "obs/jsonl.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;

std::vector<std::unique_ptr<core::UseCase>> all_cases() {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

int usage() {
  std::puts(
      "usage: campaign_cli [--version 4.6|4.8|4.13] [--mode "
      "exploit|injection] [--case NAME] [--csv] [--trace FILE.jsonl] "
      "[--list]\n"
      "                    [--threads N] [--retries N] [--quarantine N] "
      "[--budget N] [--steps N]\n"
      "                    [--recover] [--deterministic] [--journal "
      "FILE.jsonl] [--resume] [--preflight]\n"
      "                    [--profile] [--profile-wall] [--metrics-out FILE] "
      "[--chrome-trace FILE]\n"
      "                    [--status-port N] [--status-hold SEC]\n"
      "                    [--chaos-seed N] [--chaos-plan SPEC] [--chaos-log "
      "FILE] [--backoff-us N]");
  return 2;
}

/// Stable cell tag for trace lines: "<use_case>@<version>/<mode>".
std::string cell_tag(const core::CellResult& cell) {
  return cell.use_case + "@" + cell.version.to_string() + "/" +
         to_string(cell.mode);
}

/// Parse a non-negative integer flag argument; returns false on garbage.
bool parse_unsigned(const char* s, unsigned long& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  out = std::strtoul(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  core::CampaignConfig config{};
  core::SupervisorConfig supervision{};
  std::string only_case;
  std::string trace_path;
  bool csv = false;
  bool preflight = false;
  bool show_profile = false;
  bool show_profile_wall = false;
  std::string metrics_out;
  std::string chrome_trace;
  bool status_port_set = false;
  unsigned long status_port = 0;
  unsigned long status_hold = 0;
  bool chaos_armed = false;
  unsigned long chaos_seed = 0;
  std::string chaos_plan_spec;
  std::string chaos_log_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& use_case : all_cases()) {
        std::printf("%-14s %s\n", use_case->name().c_str(),
                    use_case->model().describe().c_str());
      }
      return 0;
    }
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.versions = {hv::kXen46};
      } else if (std::strcmp(v, "4.8") == 0) {
        config.versions = {hv::kXen48};
      } else if (std::strcmp(v, "4.13") == 0) {
        config.versions = {hv::kXen413};
      } else {
        return usage();
      }
    } else if (arg == "--mode") {
      const char* m = next();
      if (m == nullptr) return usage();
      if (std::strcmp(m, "exploit") == 0) {
        config.modes = {core::Mode::Exploit};
      } else if (std::strcmp(m, "injection") == 0) {
        config.modes = {core::Mode::Injection};
      } else {
        return usage();
      }
    } else if (arg == "--case") {
      const char* c = next();
      if (c == nullptr) return usage();
      only_case = c;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      const char* t = next();
      if (t == nullptr) return usage();
      trace_path = t;
      config.capture_trace = true;
    } else if (arg == "--threads") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n) || n == 0) return usage();
      supervision.threads = static_cast<unsigned>(n);
    } else if (arg == "--retries") {
      // --retries N means "N retries after the first attempt".
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      supervision.max_attempts = static_cast<unsigned>(n) + 1;
    } else if (arg == "--quarantine") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      supervision.quarantine_after = static_cast<unsigned>(n);
    } else if (arg == "--budget") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      config.max_cell_hypercalls = n;
    } else if (arg == "--steps") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      config.max_cell_steps = n;
    } else if (arg == "--recover") {
      config.attempt_recovery = true;
    } else if (arg == "--deterministic") {
      config.logical_time = true;
    } else if (arg == "--journal") {
      const char* j = next();
      if (j == nullptr) return usage();
      supervision.journal_path = j;
    } else if (arg == "--resume") {
      supervision.resume = true;
    } else if (arg == "--preflight") {
      preflight = true;
    } else if (arg == "--profile") {
      show_profile = true;
    } else if (arg == "--profile-wall") {
      show_profile_wall = true;
    } else if (arg == "--metrics-out") {
      const char* m = next();
      if (m == nullptr) return usage();
      metrics_out = m;
    } else if (arg == "--chrome-trace") {
      const char* c = next();
      if (c == nullptr) return usage();
      chrome_trace = c;
    } else if (arg == "--status-port") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n) || n > 65535) return usage();
      status_port = n;
      status_port_set = true;
    } else if (arg == "--status-hold") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      status_hold = n;
    } else if (arg == "--chaos-seed") {
      if (!parse_unsigned(next(), chaos_seed)) return usage();
      chaos_armed = true;
    } else if (arg == "--chaos-plan") {
      const char* c = next();
      if (c == nullptr) return usage();
      chaos_plan_spec = c;
      chaos_armed = true;
    } else if (arg == "--chaos-log") {
      const char* c = next();
      if (c == nullptr) return usage();
      chaos_log_path = c;
    } else if (arg == "--backoff-us") {
      unsigned long n = 0;
      if (!parse_unsigned(next(), n)) return usage();
      supervision.retry_backoff_us = n;
    } else {
      return usage();
    }
  }

  // Telemetry plane: the profiler aggregates deterministic span trees, the
  // status board feeds the live /status + /metrics endpoints. Both are
  // opt-in; with the flags off every instrumentation site in the engine
  // stays a single untaken branch.
  obs::SpanProfiler profiler;
  obs::StatusBoard board;
  const bool want_profile = show_profile || show_profile_wall ||
                            !chrome_trace.empty() || !trace_path.empty();
  if (want_profile) {
    profiler.set_record_events(!chrome_trace.empty());
    config.profiler = &profiler;
  }

  // /metrics serves the campaign-wide aggregate once the run has finished
  // (board gauges are live throughout); shared with the server thread.
  auto metrics_mu = std::make_shared<std::mutex>();
  auto final_metrics = std::make_shared<obs::MetricsSnapshot>();
  std::unique_ptr<net::TcpStatusServer> server;
  if (status_port_set) {
    config.status = &board;
    net::MetricsProvider provider = [metrics_mu, final_metrics] {
      const std::lock_guard<std::mutex> lock{*metrics_mu};
      return *final_metrics;
    };
    server = std::make_unique<net::TcpStatusServer>(
        static_cast<std::uint16_t>(status_port), &board, std::move(provider));
    if (!server->running()) {
      std::fprintf(stderr, "cannot listen on status port %lu\n", status_port);
      return 1;
    }
    std::fprintf(stderr, "campaign_cli: status server on port %u\n",
                 server->port());
  }
  const auto hold_status = [&] {
    if (server != nullptr && status_hold != 0) {
      std::this_thread::sleep_for(std::chrono::seconds{status_hold});
    }
  };

  // Model-check every configured version policy (depth 2) before burning
  // time on cells: a policy that disagrees with its expectation makes the
  // campaign's verdicts meaningless, so refuse to start.
  if (preflight) {
    // Shard the checker over the same worker count the campaign will use
    // (0 = hardware concurrency); the verdict is thread-count independent.
    const core::PreflightReport report =
        core::Campaign{config}.preflight(/*depth=*/2, supervision.threads);
    for (const auto& v : report.versions) {
      std::printf(
          "preflight xen %-5s depth %u: %llu states, %llu violation(s)%s, "
          "expected %s -> %s\n",
          v.version.to_string().c_str(), report.depth,
          static_cast<unsigned long long>(v.states_explored),
          static_cast<unsigned long long>(v.violations_found),
          v.truncated ? " [TRUNCATED]" : "",
          v.expected_vulnerable ? "vulnerable" : "clean",
          v.ok() ? "ok" : "MISMATCH");
    }
    if (!report.ok()) {
      std::fprintf(stderr,
                   "preflight failed: version policy and validation engine "
                   "disagree; not running cells\n");
      return 1;
    }
  }

  if (supervision.resume && supervision.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal FILE\n");
    return 2;
  }

  // Validate --case up front (and fail fast on typos) with one probe set.
  if (!only_case.empty()) {
    bool known = false;
    for (const auto& use_case : all_cases()) {
      if (use_case->name() == only_case) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown use case '%s' (try --list)\n",
                   only_case.c_str());
      return 2;
    }
  }

  // Open the export files up front so a bad path fails before the campaign
  // burns minutes running every cell.
  std::unique_ptr<obs::JsonlWriter> trace_writer;
  if (!trace_path.empty()) {
    trace_writer = std::make_unique<obs::JsonlWriter>(trace_path);
    if (!trace_writer->ok()) {
      std::fprintf(stderr, "cannot open trace file '%s'\n",
                   trace_path.c_str());
      return 1;
    }
  }
  std::unique_ptr<obs::JsonlWriter> metrics_writer;
  if (!metrics_out.empty()) {
    metrics_writer = std::make_unique<obs::JsonlWriter>(metrics_out);
    if (!metrics_writer->ok()) {
      std::fprintf(stderr, "cannot open metrics file '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
  }

  // Everything runs through the supervisor; with default supervision knobs
  // it degenerates to the plain sequential campaign.
  const auto factory = [&only_case] {
    auto cases = all_cases();
    if (only_case.empty()) return cases;
    std::vector<std::unique_ptr<core::UseCase>> filtered;
    for (auto& use_case : cases) {
      if (use_case->name() == only_case) filtered.push_back(std::move(use_case));
    }
    return filtered;
  };

  // Arm the chaos engine for the whole run. The engine outlives the
  // supervisor call so the schedule log can be written even when a
  // supervisor.kill fault aborts the campaign.
  std::unique_ptr<core::ChaosEngine> chaos;
  if (chaos_armed) {
    try {
      chaos = std::make_unique<core::ChaosEngine>(
          static_cast<std::uint64_t>(chaos_seed),
          core::parse_chaos_plan(chaos_plan_spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --chaos-plan: %s\n", e.what());
      return 2;
    }
    core::ChaosEngine::install(chaos.get());
  }
  const auto write_chaos_log = [&] {
    if (chaos == nullptr || chaos_log_path.empty()) return true;
    std::ofstream os{chaos_log_path, std::ios::trunc};
    os << chaos->schedule_log();
    if (!os) {
      std::fprintf(stderr, "cannot write chaos log '%s'\n",
                   chaos_log_path.c_str());
      return false;
    }
    return true;
  };

  const core::CampaignSupervisor supervisor{config, supervision};
  std::vector<core::CellResult> results;
  try {
    results = supervisor.run(factory);
  } catch (const core::CampaignKilled&) {
    // A supervisor.kill chaos fault: the journal holds every finished
    // cell, so a --resume run completes the campaign and reproduces the
    // fault-free report. Exit 3 tells harnesses (chaos_soak.sh) apart
    // from real failures.
    std::fprintf(stderr,
                 "campaign killed by chaos fault (resume with --journal + "
                 "--resume)\n");
    write_chaos_log();
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  if (!write_chaos_log()) return 1;

  // Campaign-wide aggregate: the deterministic merge of every cell's
  // metrics snapshot, in cell order.
  obs::MetricsRegistry aggregate;
  for (const auto& cell : results) aggregate.merge(cell.metrics);
  {
    // Publish the final aggregate to the status server's /metrics (it keeps
    // serving through --status-hold).
    const std::lock_guard<std::mutex> lock{*metrics_mu};
    *final_metrics = aggregate.snapshot();
  }

  if (trace_writer != nullptr) {
    for (const auto& cell : results) {
      trace_writer->events(cell.trace, cell_tag(cell));
    }
    trace_writer->metrics(aggregate.snapshot());
    // Span records ride along in the same export when profiling is on.
    if (config.profiler != nullptr) trace_writer->spans(profiler);
  }
  if (metrics_writer != nullptr) metrics_writer->metrics(aggregate.snapshot());
  if (!chrome_trace.empty()) {
    std::ofstream os{chrome_trace, std::ios::trunc};
    os << obs::chrome_trace_json(profiler) << '\n';
    if (!os) {
      std::fprintf(stderr, "cannot write chrome trace '%s'\n",
                   chrome_trace.c_str());
      return 1;
    }
  }
  if (show_profile) {
    std::fputs(obs::render_profile(profiler, false).c_str(), stdout);
  }
  if (show_profile_wall) {
    std::fputs(obs::render_profile(profiler, true).c_str(), stdout);
  }

  if (csv) {
    std::fputs(core::render_csv(results).c_str(), stdout);
    hold_status();
    return 0;
  }
  std::fputs(core::render_rq1_table(results).c_str(), stdout);
  std::fputs(core::render_table3(results).c_str(), stdout);
  std::puts("\ncampaign metrics:");
  std::fputs(core::render_metrics_summary(aggregate.snapshot()).c_str(),
             stdout);
  std::puts("\nper-cell notes:");
  for (const auto& cell : results) {
    std::printf("%-14s %-9s xen %-5s err=%d viol=%d attempts=%u%s%s%s\n",
                cell.use_case.c_str(), to_string(cell.mode).c_str(),
                cell.version.to_string().c_str(), cell.err_state,
                cell.violation, cell.attempts,
                cell.handled() ? " (handled)" : "",
                cell.recovered ? " (recovered)" : "",
                cell.quarantined ? " (quarantined)" : "");
    if (cell.failed()) {
      std::printf("    ! %s\n", cell.failure.c_str());
    }
    for (const auto& note : cell.outcome.notes) {
      std::printf("    | %s\n", note.c_str());
    }
  }
  std::fflush(stdout);
  hold_status();
  return 0;
}
