// Command-line campaign runner — the shape of the "open-source list of
// tests and experiments covering various Intrusion Models" the paper's
// conclusion calls for.
//
// Usage:
//   campaign_cli [--version 4.6|4.8|4.13] [--mode exploit|injection]
//                [--case NAME] [--csv] [--trace FILE.jsonl] [--list]
//
// With no arguments it runs the full paper matrix and prints the RQ1 and
// Table III reports. --trace captures the full per-cell event stream and
// writes it as JSONL (one {"type":"trace",...} line per event, tagged with
// its cell, then one final {"type":"metrics",...} aggregate line).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/report.hpp"
#include "obs/jsonl.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;

std::vector<std::unique_ptr<core::UseCase>> all_cases() {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

int usage() {
  std::puts(
      "usage: campaign_cli [--version 4.6|4.8|4.13] [--mode "
      "exploit|injection] [--case NAME] [--csv] [--trace FILE.jsonl] "
      "[--list]");
  return 2;
}

/// Stable cell tag for trace lines: "<use_case>@<version>/<mode>".
std::string cell_tag(const core::CellResult& cell) {
  return cell.use_case + "@" + cell.version.to_string() + "/" +
         to_string(cell.mode);
}

}  // namespace

int main(int argc, char** argv) {
  core::CampaignConfig config{};
  std::string only_case;
  std::string trace_path;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& use_case : all_cases()) {
        std::printf("%-14s %s\n", use_case->name().c_str(),
                    use_case->model().describe().c_str());
      }
      return 0;
    }
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.versions = {hv::kXen46};
      } else if (std::strcmp(v, "4.8") == 0) {
        config.versions = {hv::kXen48};
      } else if (std::strcmp(v, "4.13") == 0) {
        config.versions = {hv::kXen413};
      } else {
        return usage();
      }
    } else if (arg == "--mode") {
      const char* m = next();
      if (m == nullptr) return usage();
      if (std::strcmp(m, "exploit") == 0) {
        config.modes = {core::Mode::Exploit};
      } else if (std::strcmp(m, "injection") == 0) {
        config.modes = {core::Mode::Injection};
      } else {
        return usage();
      }
    } else if (arg == "--case") {
      const char* c = next();
      if (c == nullptr) return usage();
      only_case = c;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      const char* t = next();
      if (t == nullptr) return usage();
      trace_path = t;
      config.capture_trace = true;
    } else {
      return usage();
    }
  }

  auto cases = all_cases();
  if (!only_case.empty()) {
    std::vector<std::unique_ptr<core::UseCase>> filtered;
    for (auto& use_case : cases) {
      if (use_case->name() == only_case) filtered.push_back(std::move(use_case));
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "unknown use case '%s' (try --list)\n",
                   only_case.c_str());
      return 2;
    }
    cases = std::move(filtered);
  }

  // Open the trace file up front so a bad path fails before the campaign
  // burns minutes running every cell.
  std::ofstream trace_out;
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot open trace file '%s'\n",
                   trace_path.c_str());
      return 1;
    }
  }

  const core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  // Campaign-wide aggregate: the deterministic merge of every cell's
  // metrics snapshot, in cell order.
  obs::MetricsRegistry aggregate;
  for (const auto& cell : results) aggregate.merge(cell.metrics);

  if (trace_out.is_open()) {
    for (const auto& cell : results) {
      obs::write_events(trace_out, cell.trace, cell_tag(cell));
    }
    obs::write_metrics(trace_out, aggregate.snapshot());
  }

  if (csv) {
    std::fputs(core::render_csv(results).c_str(), stdout);
    return 0;
  }
  std::fputs(core::render_rq1_table(results).c_str(), stdout);
  std::fputs(core::render_table3(results).c_str(), stdout);
  std::puts("\ncampaign metrics:");
  std::fputs(core::render_metrics_summary(aggregate.snapshot()).c_str(),
             stdout);
  std::puts("\nper-cell notes:");
  for (const auto& cell : results) {
    std::printf("%-14s %-9s xen %-5s err=%d viol=%d%s\n",
                cell.use_case.c_str(), to_string(cell.mode).c_str(),
                cell.version.to_string().c_str(), cell.err_state,
                cell.violation, cell.handled() ? " (handled)" : "");
    for (const auto& note : cell.outcome.notes) {
      std::printf("    | %s\n", note.c_str());
    }
  }
  return 0;
}
