// Quickstart: the smallest end-to-end intrusion injection.
//
// Boots a simulated Xen 4.13 platform (dom0 + two PV guests + an attacker
// host), injects one erroneous state — the XSA-212-crash IDT corruption —
// through the HYPERVISOR_arbitrary_access prototype, and reads the verdict
// off the system monitor.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "guest/platform.hpp"

int main() {
  using namespace ii;

  // 1. A fresh experimental platform: machine, hypervisor (patched with the
  //    injection hypercall), booted PV domains, simulated LAN.
  guest::PlatformConfig config{};
  config.version = hv::kXen413;
  guest::VirtualPlatform platform{config};
  std::printf("booted simulated Xen %s with %zu domains\n",
              platform.hv().version().to_string().c_str(),
              platform.kernels().size());

  // 2. The injector interface, driven from an unprivileged guest's kernel —
  //    the paper's threat model.
  core::ArbitraryAccessInjector injector{platform.guest(0)};

  // 3. Inject the erroneous state: overwrite the IDT page-fault gate at the
  //    linear address `sidt` reports. This is the state a successful
  //    XSA-212 attack would have produced.
  const std::uint64_t gate =
      platform.hv().sidt().raw() + sim::kPageFaultVector * sim::Idt::kGateBytes;
  if (!injector.write_u64(gate, 0, core::AddressMode::Linear)) {
    std::printf("injection refused: rc=%s\n",
                hv::errno_name(injector.last_rc()));
    return 1;
  }
  std::printf("erroneous state injected at IDT gate 14 (0x%llx)\n",
              static_cast<unsigned long long>(gate));

  // 4. Activate it: any guest page fault now dispatches through the
  //    corrupted gate.
  std::uint8_t byte = 0;
  (void)platform.guest(0).read_virt(sim::Vaddr{0xDEAD000000ULL}, {&byte, 1});

  // 5. Observe: did the system handle the state, or was a security
  //    violation (here: host crash) the result?
  core::SystemMonitor monitor{platform};
  const core::Observation obs = monitor.observe();
  std::printf("hypervisor crashed: %s\n",
              obs.hypervisor_crashed ? "yes (availability violation)" : "no");
  std::puts("last hypervisor console lines:");
  for (const auto& line : obs.console_tail) std::printf("  %s\n", line.c_str());
  return obs.hypervisor_crashed ? 0 : 1;
}
