// ACID under hypervisor intrusions (paper §III-C):
//
//   "How can one assess the impact of successful intrusions on the
//    hypervisor in the ability of the transactional system to ensure the
//    ACID properties? ... Intrusion injection helps mitigate this
//    limitation by enabling the ability to induce erroneous states similar
//    to the ones observed in real hypervisor vulnerabilities."
//
// A transactional KV store runs inside a guest, with its durable log held
// in guest memory reached through the MMU. An unprivileged co-tenant then
// uses the injector to induce "Write Unauthorized Memory" erroneous states
// against the database's backing frames, and the example audits which ACID
// properties survive.
#include <cstdio>

#include "core/injector.hpp"
#include "guest/platform.hpp"
#include "txdb/guest_storage.hpp"
#include "txdb/txdb.hpp"

int main() {
  using namespace ii;

  guest::PlatformConfig pc{};
  pc.version = hv::kXen48;
  pc.guest_pages = 256;
  guest::VirtualPlatform platform{pc};

  // The business-critical system: a bank-style ledger in guest01.
  txdb::GuestMemoryStorage storage{platform.guest(0), 32};
  txdb::TransactionalKV db{storage};
  for (int i = 0; i < 50; ++i) {
    txdb::Transaction tx;
    tx.put("account-" + std::to_string(i % 10), std::to_string(100 + i));
    tx.put("audit-trail", "tx#" + std::to_string(i));
    if (!db.commit(tx)) {
      std::puts("workload commit failed unexpectedly");
      return 1;
    }
  }
  std::printf("workload committed: %llu transactions\n",
              static_cast<unsigned long long>(db.committed_count()));
  const auto clean = db.verify();
  std::printf("pre-injection integrity: %s\n",
              clean.torn_record_found ? "TORN" : "clean");

  // The intrusion: the co-tenant guest02 gained (hypothetically, via any
  // memory-corruption vulnerability) the ability to write unauthorized
  // memory. Inject that erroneous state directly: flip bytes inside the
  // ledger's machine frames.
  core::ArbitraryAccessInjector injector{platform.guest(1)};
  const sim::Mfn victim_frame =
      *platform.guest(0).pfn_to_mfn(storage.pfns()[0]);
  // Offset 0x400 lands mid-log: early transactions precede it, later ones
  // follow it.
  const std::uint64_t target =
      sim::mfn_to_paddr(victim_frame).raw() + 0x400;
  std::uint8_t garbage[16] = {0xDE, 0xAD, 0xBE, 0xEF};
  if (!injector.write(target, garbage, core::AddressMode::Physical)) {
    std::printf("injection refused: %s\n",
                hv::errno_name(injector.last_rc()));
    return 1;
  }
  std::puts("\ninjected: co-tenant wrote 16 bytes into the ledger's log");

  // Assessment: which ACID properties survive the intrusion?
  const auto report = db.verify();
  txdb::TransactionalKV recovered{storage, /*format=*/false};

  std::puts("\n== ACID assessment under the injected erroneous state ========");
  std::printf("  Consistency : %s\n",
              report.torn_record_found
                  ? "corruption DETECTED by checksums (fails closed)"
                  : "log still verifies");
  std::printf("  Atomicity   : recovery replays %llu whole transactions, "
              "none partial\n",
              static_cast<unsigned long long>(recovered.committed_count()));
  std::printf("  Durability  : %llu of %llu committed transactions survive\n",
              static_cast<unsigned long long>(recovered.committed_count()),
              static_cast<unsigned long long>(db.committed_count()));
  std::printf("  Isolation   : co-tenant bypassed it at the hypervisor "
              "layer — %s\n",
              report.torn_record_found ? "impact visible in the log"
                                       : "no impact observed");
  for (const auto& note : report.notes) {
    std::printf("      note: %s\n", note.c_str());
  }

  std::puts(
      "\nConclusion: with a compromised hypervisor the database cannot keep\n"
      "durability (committed transactions after the corruption point are\n"
      "lost), though checksummed logging preserves detection and atomic\n"
      "recovery. This is exactly the class of assessment the paper's\n"
      "intrusion-injection approach enables without any real exploit.");
  return 0;
}
