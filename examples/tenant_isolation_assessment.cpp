// Multi-tenant isolation assessment across threat vectors (extension).
//
// A cloud operator's question (paper §III-C): across the intrusion models
// we know about — memory corruption, retained grant pages, interrupt
// storms, teardown leaks — how well does each hypervisor release protect
// tenant isolation once an intrusion has happened? The answer requires no
// exploit corpus: the campaign engine drives every model's erroneous state
// through the injector and scores what each release handled.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "xsa/usecases.hpp"

int main() {
  using namespace ii;

  // The full catalogue: the paper's four memory-corruption models plus the
  // three extension models.
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }

  core::CampaignConfig config{};
  config.modes = {core::Mode::Injection};
  const core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  std::puts("== Tenant-isolation assessment (injection only) ===============");
  std::puts("model catalogue:");
  for (const auto& use_case : cases) {
    std::printf("  %-14s %s\n", use_case->name().c_str(),
                core::to_string(use_case->model().functionality).c_str());
  }

  std::puts("\nscorecard (injected states handled per release):");
  for (const hv::XenVersion version : config.versions) {
    int handled = 0, violated = 0;
    for (const auto& cell : results) {
      if (cell.version != version) continue;
      if (cell.handled()) {
        ++handled;
      } else if (cell.violation) {
        ++violated;
      }
    }
    std::printf("  Xen %-5s handled %d / violated %d of %zu models\n",
                version.to_string().c_str(), handled, violated, cases.size());
  }

  std::puts("\nmachine-readable cells (CSV):");
  std::fputs(core::render_csv(results).c_str(), stdout);
  return 0;
}
