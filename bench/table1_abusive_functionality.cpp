// Regenerates Table I: "Example of abusive functionalities that can be
// obtained from activating Xen vulnerabilities" (paper §IV-D).
//
// Classifies the 100-advisory study dataset and prints the per-
// functionality counts with the four class sections. Expected shape:
// Memory Access = 35, Memory Management = 40, Exceptional Conditions = 11,
// Non-Memory Related = 22, total assignments 108 > 100 advisories.
#include <cstdio>

#include "cvedb/advisories.hpp"

int main() {
  const auto& records = ii::cvedb::study_records();
  const auto table = ii::cvedb::classify(records);
  std::puts("== Table I =====================================================");
  std::fputs(ii::cvedb::render_table1(table).c_str(), stdout);

  std::puts("\nDerived intrusion models (grouping by component x functionality):");
  std::fputs(
      ii::cvedb::render_model_catalogue(
          ii::cvedb::derive_intrusion_models(records))
          .c_str(),
      stdout);

  std::puts("\nAnchor advisories discussed in the paper:");
  for (const auto& rec : records) {
    if (rec.xsa_id.rfind("XSA-S", 0) == 0) continue;  // synthesized
    std::printf("  %-8s %-14s %s\n", rec.xsa_id.c_str(), rec.cve_id.c_str(),
                rec.summary.substr(0, 70).c_str());
  }
  return 0;
}
