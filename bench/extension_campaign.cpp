// Extension campaign (DESIGN.md §7): the grant-table Keep-Page-Access model
// (XSA-387 family, paper §IV-B) and the event-channel storm model (paper
// §IX-C / Table I's non-memory class), run through the same campaign engine
// as the paper's four use cases.
//
// Expected shape: both erroneous states inject on every version;
// XSA-387-keep violates confidentiality everywhere (no version re-validates
// live mappings); EVTCHN-storm wedges the CPU pre-4.13 and is absorbed
// (handled) by the hardened delivery loop. EVTCHN-storm also demonstrates
// paper capability (ii): assessment with NO public exploit available.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "xsa/usecases.hpp"

int main() {
  using namespace ii;
  const auto cases = xsa::make_extension_use_cases();

  std::puts("== Extension intrusion models ==================================");
  std::fputs(core::render_use_case_table(cases).c_str(), stdout);

  core::CampaignConfig config{};
  config.modes = {core::Mode::Exploit, core::Mode::Injection};
  const core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  std::puts("\nper-cell results:");
  for (const auto& cell : results) {
    std::printf("  %-13s %-9s xen %-5s completed=%d err_state=%d "
                "violation=%d%s\n",
                cell.use_case.c_str(), to_string(cell.mode).c_str(),
                cell.version.to_string().c_str(), cell.outcome.completed,
                cell.err_state, cell.violation,
                cell.handled() ? " (handled)" : "");
  }

  std::puts("\ninjection matrix (Table III layout):");
  std::fputs(core::render_table3(results).c_str(), stdout);
  return 0;
}
