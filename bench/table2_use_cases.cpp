// Regenerates Table II: the four use cases and the abusive functionality
// their intrusion models capture (paper §VI-A), plus each model's full
// instantiation ("an unprivileged guest virtual machine that uses an
// hypercall to target the memory management component").
#include <cstdio>

#include "core/coverage.hpp"
#include "core/report.hpp"
#include "cvedb/advisories.hpp"
#include "xsa/usecases.hpp"

int main() {
  const auto cases = ii::xsa::make_paper_use_cases();
  std::puts("== Table II ====================================================");
  std::fputs(ii::core::render_use_case_table(cases).c_str(), stdout);
  std::puts("\nIntrusion-model instantiations:");
  for (const auto& use_case : cases) {
    std::printf("  %-14s %s\n", use_case->name().c_str(),
                use_case->model().describe().c_str());
  }

  // Coverage of the study-derived model catalogue by ALL executable use
  // cases (paper + extensions): the auditable form of the conclusion's
  // "open-source list of tests covering various Intrusion Models".
  auto all_cases = ii::xsa::make_paper_use_cases();
  for (auto& extension : ii::xsa::make_extension_use_cases()) {
    all_cases.push_back(std::move(extension));
  }
  const auto derived =
      ii::cvedb::derive_intrusion_models(ii::cvedb::study_records());
  std::vector<ii::core::IntrusionModel> catalogue;
  catalogue.reserve(derived.size());
  for (const auto& d : derived) catalogue.push_back(d.model);
  std::puts("");
  std::fputs(ii::core::render_coverage(
                 ii::core::compute_model_coverage(catalogue, all_cases))
                 .c_str(),
             stdout);
  return 0;
}
