// Performance micro-benchmarks (google-benchmark).
//
// Not part of the paper's evaluation — the paper measures feasibility, not
// speed — but a production injector cares about the cost of its building
// blocks: MMU walks, validated page-table updates, exchange grooming vs.
// one injector hypercall (the paper's "easier to induce a representative
// erroneous state than effectively attack the system", quantified), audits,
// and full platform construction.
#include <benchmark/benchmark.h>

#include "core/campaign.hpp"
#include "core/injector.hpp"
#include "guest/platform.hpp"
#include "hv/audit.hpp"
#include "xsa/exchange_primitive.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;  // NOLINT: bench-local convenience

guest::PlatformConfig bench_config(hv::XenVersion version = hv::kXen46) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  return pc;
}

void BM_MmuWalk(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  const sim::Mfn root = p.hv().domain(p.guest(0).id()).cr3();
  const sim::Vaddr va{hv::kGuestKernelBase + 5 * sim::kPageSize};
  for (auto _ : state) {
    auto walk = p.hv().mmu().walk(root, va);
    benchmark::DoNotOptimize(walk);
  }
}
BENCHMARK(BM_MmuWalk);

void BM_GuestRead64(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Vaddr va = g.pfn_va(sim::Pfn{5});
  for (auto _ : state) {
    auto v = g.read_u64(va);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_GuestRead64);

void BM_MmuUpdateRemap(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Paddr slot = g.l1_slot_paddr(sim::Pfn{5});
  const std::uint64_t a =
      sim::Pte::make(*g.pfn_to_mfn(sim::Pfn{5}),
                     sim::Pte::kPresent | sim::Pte::kWritable |
                         sim::Pte::kUser)
          .raw();
  const std::uint64_t b =
      sim::Pte::make(*g.pfn_to_mfn(sim::Pfn{6}),
                     sim::Pte::kPresent | sim::Pte::kWritable |
                         sim::Pte::kUser)
          .raw();
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.mmu_update_one(slot, flip ? a : b));
    flip = !flip;
  }
}
BENCHMARK(BM_MmuUpdateRemap);

void BM_MemoryExchange(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  (void)g.unmap_pfn(*pfn);
  const sim::Vaddr out = g.pfn_va(sim::Pfn{5});
  for (auto _ : state) {
    hv::MemoryExchange exch{};
    exch.in_extents = {*pfn};
    exch.out_extent_start = out;
    benchmark::DoNotOptimize(g.memory_exchange(exch));
  }
}
BENCHMARK(BM_MemoryExchange);

void BM_InjectorWrite64(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  core::ArbitraryAccessInjector injector{p.guest(0)};
  const std::uint64_t target =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()).raw() +
      0x200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector.write_u64(target, 0xFEED, core::AddressMode::Physical));
  }
}
BENCHMARK(BM_InjectorWrite64);

/// The asymmetry the paper argues for: one controlled 8-byte write through
/// the real XSA-212 exploit primitive (allocator grooming and all) vs. the
/// single-hypercall injector write above.
void BM_ExploitGroomedWrite64(benchmark::State& state) {
  auto pc = bench_config(hv::kXen46);
  pc.injector_enabled = false;
  for (auto _ : state) {
    state.PauseTiming();
    guest::VirtualPlatform p{pc};  // grooming consumes frames: fresh machine
    xsa::ExchangeWritePrimitive prim{p.guest(0)};
    const auto target = hv::directmap_vaddr(
        sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x200);
    state.ResumeTiming();
    benchmark::DoNotOptimize(prim.write_u64(target, 0xFEEDFACECAFEBEEF));
    state.counters["exchanges"] = prim.exchanges_used();
  }
}
BENCHMARK(BM_ExploitGroomedWrite64)->Unit(benchmark::kMillisecond);

void BM_AuditSystem(benchmark::State& state) {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  for (auto _ : state) {
    auto report = hv::audit_system(p.hv());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AuditSystem)->Unit(benchmark::kMicrosecond);

void BM_PlatformBoot(benchmark::State& state) {
  const auto pc = bench_config();
  for (auto _ : state) {
    guest::VirtualPlatform p{pc};
    benchmark::DoNotOptimize(p.hv().crashed());
  }
}
BENCHMARK(BM_PlatformBoot)->Unit(benchmark::kMillisecond);

void BM_CampaignCellInjection(benchmark::State& state) {
  const auto cases = xsa::make_paper_use_cases();
  core::CampaignConfig config{};
  config.platform = bench_config(hv::kXen413);
  const core::Campaign campaign{config};
  for (auto _ : state) {
    auto cell = campaign.run_cell(*cases[0], hv::kXen413,
                                  core::Mode::Injection);
    benchmark::DoNotOptimize(cell);
  }
}
BENCHMARK(BM_CampaignCellInjection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
