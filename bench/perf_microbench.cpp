// Performance micro-benchmarks, built on the obs metrics registry.
//
// Not part of the paper's evaluation — the paper measures feasibility, not
// speed — but a production injector cares about the cost of its building
// blocks: MMU walks, validated page-table updates, exchange grooming vs.
// one injector hypercall (the paper's "easier to induce a representative
// erroneous state than effectively attack the system", quantified), audits,
// and full platform construction.
//
// Each benchmark records per-iteration latency into an obs::Histogram and
// reports mean/p50/p95/p99 from its snapshot. Besides the human-readable
// table, every benchmark emits one machine-readable line:
//   BENCH_JSON {"name":"mmu_walk","iters":N,"ns_mean":...,...}
// so CI can collect results with `grep ^BENCH_JSON | cut -d' ' -f2-`.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/model_checker.hpp"
#include "core/campaign.hpp"
#include "core/injector.hpp"
#include "hv/snapshot.hpp"
#include "guest/platform.hpp"
#include "hv/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "xsa/exchange_primitive.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;  // NOLINT: bench-local convenience

guest::PlatformConfig bench_config(hv::XenVersion version = hv::kXen46) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  return pc;
}

/// Keep a result alive past the optimizer, like benchmark::DoNotOptimize.
template <typename T>
void do_not_optimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

obs::MetricsRegistry& registry() {
  static obs::MetricsRegistry reg;
  return reg;
}

/// Run `fn` `iters` times (after `warmup` untimed runs), recording each
/// iteration's latency in nanoseconds into the registry histogram
/// "bench.<name>.ns", and print the summary row + BENCH_JSON line.
void run_bench(const std::string& name, std::size_t iters,
               const std::function<void()>& fn, std::size_t warmup = 16) {
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < warmup; ++i) fn();

  obs::Histogram& histo = registry().histogram("bench." + name + ".ns");
  obs::Counter& count = registry().counter("bench." + name + ".iters");
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = clock::now();
    fn();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - start)
                        .count();
    histo.record(static_cast<std::uint64_t>(ns));
    count.inc();
  }

  std::printf("%-28s %8zu iters  mean %10.0f ns  p50 %10.0f  p95 %10.0f  "
              "p99 %10.0f  max %8llu\n",
              name.c_str(), iters, histo.mean(), histo.percentile(0.50),
              histo.percentile(0.95), histo.percentile(0.99),
              static_cast<unsigned long long>(histo.max()));
  std::printf("BENCH_JSON {\"name\":\"%s\",\"iters\":%zu,\"ns_mean\":%.1f,"
              "\"ns_p50\":%.1f,\"ns_p95\":%.1f,\"ns_p99\":%.1f,"
              "\"ns_min\":%llu,\"ns_max\":%llu,\"host_cores\":%u}\n",
              name.c_str(), iters, histo.mean(), histo.percentile(0.50),
              histo.percentile(0.95), histo.percentile(0.99),
              static_cast<unsigned long long>(histo.min()),
              static_cast<unsigned long long>(histo.max()),
              std::thread::hardware_concurrency());
}

void bench_mmu_walk() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  const sim::Mfn root = p.hv().domain(p.guest(0).id()).cr3();
  const sim::Vaddr va{hv::kGuestKernelBase + 5 * sim::kPageSize};
  run_bench("mmu_walk", 100000, [&] {
    auto walk = p.hv().mmu().walk(root, va);
    do_not_optimize(walk);
  });
}

void bench_guest_read64() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Vaddr va = g.pfn_va(sim::Pfn{5});
  run_bench("guest_read64", 100000, [&] {
    auto v = g.read_u64(va);
    do_not_optimize(v);
  });
}

/// The acceptance hot path: validated mmu_update with no sink attached vs.
/// the same loop with an attached counters-only sink. The first must not
/// regress against the pre-observability baseline (the only added cost is
/// one null check per instrumentation site); comparing the two rows bounds
/// the tracing overhead itself.
void bench_mmu_update_remap(bool traced) {
  auto pc = bench_config();
  obs::TraceSink sink{64, /*category_mask=*/0};
  if (traced) pc.trace_sink = &sink;
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Paddr slot = g.l1_slot_paddr(sim::Pfn{5});
  const std::uint64_t a =
      sim::Pte::make(*g.pfn_to_mfn(sim::Pfn{5}),
                     sim::Pte::kPresent | sim::Pte::kWritable |
                         sim::Pte::kUser)
          .raw();
  const std::uint64_t b =
      sim::Pte::make(*g.pfn_to_mfn(sim::Pfn{6}),
                     sim::Pte::kPresent | sim::Pte::kWritable |
                         sim::Pte::kUser)
          .raw();
  bool flip = false;
  run_bench(traced ? "mmu_update_remap_traced" : "mmu_update_remap", 50000,
            [&] {
              do_not_optimize(g.mmu_update_one(slot, flip ? a : b));
              flip = !flip;
            });
}

void bench_memory_exchange() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  (void)g.unmap_pfn(*pfn);
  const sim::Vaddr out = g.pfn_va(sim::Pfn{5});
  run_bench("memory_exchange", 20000, [&] {
    hv::MemoryExchange exch{};
    exch.in_extents = {*pfn};
    exch.out_extent_start = out;
    do_not_optimize(g.memory_exchange(exch));
  });
}

void bench_injector_write64() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  core::ArbitraryAccessInjector injector{p.guest(0)};
  const std::uint64_t target =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()).raw() +
      0x200;
  run_bench("injector_write64", 50000, [&] {
    do_not_optimize(
        injector.write_u64(target, 0xFEED, core::AddressMode::Physical));
  });
}

/// The asymmetry the paper argues for: one controlled 8-byte write through
/// the real XSA-212 exploit primitive (allocator grooming and all) vs. the
/// single-hypercall injector write above. Platform construction is inside
/// the timed region (grooming consumes frames, so every attempt needs a
/// fresh machine) — compare against platform_boot to separate the costs.
void bench_exploit_groomed_write64() {
  auto pc = bench_config(hv::kXen46);
  pc.injector_enabled = false;
  run_bench(
      "exploit_groomed_write64", 20,
      [&] {
        guest::VirtualPlatform p{pc};
        xsa::ExchangeWritePrimitive prim{p.guest(0)};
        const auto target = hv::directmap_vaddr(
            sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) +
            0x200);
        do_not_optimize(prim.write_u64(target, 0xFEEDFACECAFEBEEF));
      },
      /*warmup=*/2);
}

void bench_audit_system() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  run_bench("audit_system", 2000, [&] {
    auto report = hv::audit_system(p.hv());
    do_not_optimize(report);
  });
}

void bench_platform_boot() {
  const auto pc = bench_config();
  run_bench(
      "platform_boot", 50,
      [&] {
        guest::VirtualPlatform p{pc};
        do_not_optimize(p.hv().crashed());
      },
      /*warmup=*/2);
}

void bench_campaign_cell_injection() {
  const auto cases = xsa::make_paper_use_cases();
  core::CampaignConfig config{};
  config.platform = bench_config(hv::kXen413);
  const core::Campaign campaign{config};
  core::PlatformPool pool;  // persistent: cells after the first lease warm
  run_bench(
      "campaign_cell_injection", 20,
      [&] {
        auto cell = campaign.run_cell(*cases[0], hv::kXen413,
                                      core::Mode::Injection, pool);
        do_not_optimize(cell);
      },
      /*warmup=*/2);
}

/// Warm vs cold cell setup (DESIGN.md §10): the same use-case cell leased
/// from a persistent pool (delta-restored baseline) vs booted from scratch
/// every iteration (reuse_platforms off). The ratio is the campaign-side
/// payoff of dirty-frame tracking.
void bench_campaign_cell_warm_vs_cold() {
  const auto cases = xsa::make_paper_use_cases();
  core::CampaignConfig config{};
  config.platform = bench_config(hv::kXen413);
  {
    const core::Campaign campaign{config};
    core::PlatformPool pool;
    run_bench(
        "campaign_cell_warm", 50,
        [&] {
          auto cell = campaign.run_cell(*cases[0], hv::kXen413,
                                        core::Mode::Injection, pool);
          do_not_optimize(cell);
        },
        /*warmup=*/2);
  }
  {
    auto cold_config = config;
    cold_config.reuse_platforms = false;
    const core::Campaign campaign{cold_config};
    run_bench(
        "campaign_cell_cold", 20,
        [&] {
          auto cell = campaign.run_cell(*cases[0], hv::kXen413,
                                        core::Mode::Injection);
          do_not_optimize(cell);
        },
        /*warmup=*/2);
  }
}

/// Incremental vs full state hashing over a lightly-dirtied machine: the
/// steady-state of the model checker's dedup loop. Each iteration dirties
/// one frame, so the incremental path rehashes O(1) frames while the full
/// path walks all 16384.
void bench_state_hash() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Vaddr va = g.pfn_va(sim::Pfn{5});
  std::uint64_t x = 0;
  (void)p.hv().state_hash();  // populate the digest cache
  run_bench("state_hash_incremental", 2000, [&] {
    (void)g.write_u64(va, ++x);
    do_not_optimize(p.hv().state_hash());
  });
  run_bench("state_hash_full", 200, [&] {
    (void)g.write_u64(va, ++x);
    do_not_optimize(p.hv().state_hash_full());
  });
}

/// Snapshot and restore, full vs delta, with one dirty frame per
/// iteration — the checker's per-state working set.
void bench_snapshot_restore() {
  auto pc = bench_config();
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  const sim::Vaddr va = g.pfn_va(sim::Pfn{5});
  std::uint64_t x = 0;
  run_bench("snapshot_full", 200, [&] {
    (void)g.write_u64(va, ++x);
    do_not_optimize(p.hv().snapshot());
  });
  const hv::HvSnapshot base = p.hv().snapshot();
  run_bench("snapshot_delta", 2000, [&] {
    (void)g.write_u64(va, ++x);
    do_not_optimize(p.hv().snapshot_delta(base));
  });
  run_bench("restore_full", 200, [&] {
    (void)g.write_u64(va, ++x);
    p.hv().restore(base);
  });
  run_bench("restore_delta", 2000, [&] {
    (void)g.write_u64(va, ++x);
    p.hv().restore_delta(base);
  });
}

/// The whole depth-2 bounded check, delta exploration vs the
/// restore-root-and-replay fallback — the end-to-end number behind the
/// analysis_cli speedup gate.
void bench_model_check_depth2() {
  analysis::ModelCheckConfig mc;
  mc.version = hv::kXen46;
  mc.depth = 2;
  run_bench(
      "model_check_depth2", 10,
      [&] {
        mc.use_replay_fallback = false;
        do_not_optimize(analysis::run_model_check(mc));
      },
      /*warmup=*/1);
  run_bench(
      "model_check_depth2_replay", 10,
      [&] {
        mc.use_replay_fallback = true;
        do_not_optimize(analysis::run_model_check(mc));
      },
      /*warmup=*/1);
}

/// The depth-3 bounded check, serial vs sharded (DESIGN.md §12). One row
/// per thread count; the speedup only materializes with real cores, but
/// the rows also pin that sharding costs ~nothing when it cannot help
/// (single-core hosts run the barrier-synchronized passes back to back).
void bench_model_check_depth3() {
  analysis::ModelCheckConfig mc;
  mc.version = hv::kXen46;
  mc.depth = 3;
  for (const unsigned threads : {1u, 2u, 4u}) {
    mc.threads = threads;
    run_bench(
        "model_check_depth3_t" + std::to_string(threads), 3,
        [&] { do_not_optimize(analysis::run_model_check(mc)); },
        /*warmup=*/1);
  }
}

/// Span-profiler cost, both sides of the `if (profiler)` branch. The
/// unprofiled rows are the existing campaign_cell_warm / model_check_depth2
/// benches (every instrumentation site compiled in, no profiler attached) —
/// the no-sink gate compares those against the pre-telemetry seed. These
/// rows measure the *attached* cost: scoped spans, step accounting, and the
/// per-depth tree updates.
void bench_profiler_attached() {
  {
    const auto cases = xsa::make_paper_use_cases();
    obs::SpanProfiler prof;
    core::CampaignConfig config{};
    config.platform = bench_config(hv::kXen413);
    config.profiler = &prof;
    const core::Campaign campaign{config};
    core::PlatformPool pool;
    run_bench(
        "campaign_cell_warm_profiled", 50,
        [&] {
          auto cell = campaign.run_cell(*cases[0], hv::kXen413,
                                        core::Mode::Injection, pool);
          do_not_optimize(cell);
        },
        /*warmup=*/2);
  }
  {
    obs::SpanProfiler prof;
    analysis::ModelCheckConfig mc;
    mc.version = hv::kXen46;
    mc.depth = 2;
    mc.profiler = &prof;
    run_bench(
        "model_check_depth2_profiled", 10,
        [&] { do_not_optimize(analysis::run_model_check(mc)); },
        /*warmup=*/1);
  }
}

/// Where the sharded checker's wall time actually goes: one profiled
/// depth-3 run at 4 workers, reported as one BENCH_JSON line per engine
/// phase (produce / admit / settle / spill, summed over depths). The
/// BENCH_PR5 numbers attributed the old two-pass engine's overhead to its
/// re-derive pass; this breakdown shows what the single-pass owner-computes
/// engine spends instead.
void bench_checker_phase_breakdown() {
  obs::SpanProfiler prof;
  analysis::ModelCheckConfig mc;
  mc.version = hv::kXen46;
  mc.depth = 3;
  mc.threads = 4;
  mc.profiler = &prof;
  do_not_optimize(analysis::run_model_check(mc));

  constexpr int kPhases = 4;
  std::uint64_t wall[kPhases] = {0, 0, 0, 0};
  std::uint64_t steps[kPhases] = {0, 0, 0, 0};
  static constexpr std::string_view names[kPhases] = {
      obs::kSpanProduce, obs::kSpanAdmit, obs::kSpanSettle, obs::kSpanSpill};
  const auto check = prof.root().children.find(obs::kSpanCheck);
  if (check != prof.root().children.end()) {
    for (const auto& [depth_name, depth_node] : check->second->children) {
      for (int p = 0; p < kPhases; ++p) {
        const auto it = depth_node->children.find(names[p]);
        if (it == depth_node->children.end()) continue;
        wall[p] += it->second->wall_ns;
        steps[p] += it->second->total_steps(true);
      }
    }
  }
  for (int p = 0; p < kPhases; ++p) {
    std::printf(
        "BENCH_JSON {\"name\":\"mc_depth3_t4_phase_%s\",\"wall_us\":%llu,"
        "\"steps\":%llu,\"host_cores\":%u}\n",
        std::string{names[p]}.c_str(),
        static_cast<unsigned long long>(wall[p] / 1000),
        static_cast<unsigned long long>(steps[p]),
        std::thread::hardware_concurrency());
  }
}

}  // namespace

int main() {
  bench_mmu_walk();
  bench_guest_read64();
  bench_mmu_update_remap(/*traced=*/false);
  bench_mmu_update_remap(/*traced=*/true);
  bench_memory_exchange();
  bench_injector_write64();
  bench_exploit_groomed_write64();
  bench_audit_system();
  bench_platform_boot();
  bench_campaign_cell_injection();
  bench_state_hash();
  bench_snapshot_restore();
  bench_campaign_cell_warm_vs_cold();
  bench_model_check_depth2();
  bench_model_check_depth3();
  bench_profiler_attached();
  bench_checker_phase_breakdown();
  return 0;
}
