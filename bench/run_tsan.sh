#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel campaign engine, the sharded
# model checker and the per-cell trace sinks: builds the tree with
# -DII_SANITIZE=thread and runs the concurrency-sensitive test binaries
# under TSan.
#
# Usage: bench/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DII_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  core_coverage_parallel_test obs_trace_test core_campaign_trace_test \
  core_supervisor_test analysis_model_checker_test net_status_server_test \
  campaign_integration_test core_chaos_test core_fuzz_seq_test

status=0
for test_bin in core_coverage_parallel_test obs_trace_test \
                core_campaign_trace_test core_supervisor_test net_status_server_test \
                analysis_model_checker_test campaign_integration_test \
                core_chaos_test core_fuzz_seq_test; do
  echo "== TSan: $test_bin"
  if ! "$BUILD_DIR/tests/$test_bin"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "TSan run FAILED"
else
  echo "TSan run OK"
fi
exit "$status"
