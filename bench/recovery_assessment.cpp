// Recovery assessment bench: how expensive is a ReHype-style hypervisor
// micro-reboot, and what does it actually restore?
//
// For each (use case, version) pair the loop builds a fresh platform,
// injects the use case's erroneous state through the injector interface,
// then times Hypervisor::recover() alone — platform construction and the
// injection are outside the timed region. Each row reports the recover()
// latency distribution plus what the pass repaired (invariants violated
// before / restored after, IDT gates, scrubbed PTEs, ...), and a
// machine-readable line:
//   BENCH_JSON {"name":"recover_XSA-212-priv_4.8","iters":N,...}
// so CI can collect results with `grep ^BENCH_JSON | cut -d' ' -f2-`.
//
// The "recover_clean" baseline row measures the same walk over an
// uncorrupted platform: the fixed cost of auditing + reconstruction when
// there is nothing to repair.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "guest/platform.hpp"
#include "hv/recovery.hpp"
#include "obs/metrics.hpp"
#include "xsa/usecases.hpp"

namespace {

using namespace ii;  // NOLINT: bench-local convenience

guest::PlatformConfig bench_config(hv::XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  pc.injector_enabled = true;
  return pc;
}

obs::MetricsRegistry& registry() {
  static obs::MetricsRegistry reg;
  return reg;
}

std::string join_invariants(const std::vector<hv::Invariant>& invariants) {
  std::string out;
  for (const hv::Invariant invariant : invariants) {
    if (!out.empty()) out += ",";
    out += hv::to_string(invariant);
  }
  return out.empty() ? "-" : out;
}

/// One bench row: `iters` rounds of (fresh platform -> corrupt() -> timed
/// recover()). The last round's RecoveryReport feeds the summary columns.
void bench_recovery(
    const std::string& name, hv::XenVersion version, std::size_t iters,
    const std::function<void(guest::VirtualPlatform&)>& corrupt) {
  using clock = std::chrono::steady_clock;
  const auto pc = bench_config(version);

  obs::Histogram& histo = registry().histogram("bench." + name + ".ns");
  hv::RecoveryReport last{};
  std::size_t succeeded = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    guest::VirtualPlatform platform{pc};
    corrupt(platform);

    const auto start = clock::now();
    hv::RecoveryReport report = platform.hv().recover();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - start)
                        .count();
    histo.record(static_cast<std::uint64_t>(ns));
    if (report.succeeded()) ++succeeded;
    last = std::move(report);
  }

  std::printf(
      "%-26s %4zu iters  mean %9.0f ns  p95 %9.0f  ok %zu/%zu\n"
      "    pre-violated: %s\n"
      "    restored:     %s\n"
      "    repairs: idt=%llu xen_l3=%llu retyped=%llu p2m_dropped=%llu "
      "ptes_scrubbed=%llu unrecovered_domains=%zu\n",
      name.c_str(), iters, histo.mean(), histo.percentile(0.95), succeeded,
      iters, join_invariants(last.pre.violated_set()).c_str(),
      join_invariants(last.restored()).c_str(),
      static_cast<unsigned long long>(last.idt_gates_restored),
      static_cast<unsigned long long>(last.xen_l3_entries_cleared),
      static_cast<unsigned long long>(last.frames_retyped),
      static_cast<unsigned long long>(last.p2m_entries_dropped),
      static_cast<unsigned long long>(last.ptes_scrubbed),
      last.unrecovered_domains.size());
  std::printf(
      "BENCH_JSON {\"name\":\"%s\",\"iters\":%zu,\"ns_mean\":%.1f,"
      "\"ns_p50\":%.1f,\"ns_p95\":%.1f,\"ns_max\":%llu,\"succeeded\":%zu,"
      "\"pre_violated\":\"%s\",\"restored\":\"%s\",\"host_cores\":%u}\n",
      name.c_str(), iters, histo.mean(), histo.percentile(0.50),
      histo.percentile(0.95), static_cast<unsigned long long>(histo.max()),
      succeeded, join_invariants(last.pre.violated_set()).c_str(),
      join_invariants(last.restored()).c_str(),
      std::thread::hardware_concurrency());
}

/// Inject one use case's erroneous state (ignoring its outcome: a partial
/// injection still leaves corrupted state worth recovering from).
void inject(core::UseCase& use_case, guest::VirtualPlatform& platform) {
  (void)use_case.run_injection(platform);
}

}  // namespace

int main() {
  constexpr std::size_t kIters = 20;

  for (const hv::XenVersion version : {hv::kXen48, hv::kXen413}) {
    std::string suffix = "_";
    suffix += version.to_string();

    bench_recovery("recover_clean" + suffix, version, kIters,
                   [](guest::VirtualPlatform&) {});

    // Paper use cases: each injects a distinct corruption family (IDT gate,
    // shared Xen L3, writable-page-table window, linear self map).
    for (auto& use_case : xsa::make_paper_use_cases()) {
      bench_recovery(
          "recover_" + use_case->name() + suffix, version, kIters,
          [&use_case](guest::VirtualPlatform& p) { inject(*use_case, p); });
    }

    // XSA-387 keeps a stale grant-status mapping across a version
    // downgrade — the grant-lifecycle invariant.
    for (auto& use_case : xsa::make_extension_use_cases()) {
      if (use_case->name() != "XSA-387-keep") continue;
      bench_recovery(
          "recover_" + use_case->name() + suffix, version, kIters,
          [&use_case](guest::VirtualPlatform& p) { inject(*use_case, p); });
    }
  }
  return 0;
}
