// Randomized injection campaign (paper §IV-C's fuzz-style suggestion,
// implemented as an extension experiment) plus the coverage-guided
// sequence fuzzer's performance evidence (DESIGN.md §17, BENCH_PR10.json):
//
//  1. the original blind write-what-where campaign across the three
//     releases (outcome distributions);
//  2. warm-vs-cold throughput of the blind campaign — one boot plus
//     delta rewinds vs a cold boot per iteration;
//  3. guided-vs-blind coverage at equal iteration budgets across seeds
//     (the acceptance claim: guided must reach strictly more);
//  4. the guided run's coverage growth curve per 1k iterations.
//
// Emits BENCH_JSON lines like perf_microbench so CI can collect them.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/fuzz.hpp"

namespace {

using Clock = std::chrono::steady_clock;

ii::core::SeqFuzzConfig seq_config(std::uint64_t seed, unsigned iterations,
                                   bool guided) {
  ii::core::SeqFuzzConfig config;
  config.version = ii::hv::kXen46;
  config.seed = seed;
  config.iterations = iterations;
  config.guided = guided;
  config.minimize = false;  // coverage comparison, not survivor triage
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  return config;
}

double run_blind_campaign_ms(bool warm) {
  ii::core::FuzzConfig config{};
  config.version = ii::hv::kXen46;
  config.iterations = 200;
  config.seed = 7;
  config.reuse_platform = warm;
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  const auto t0 = Clock::now();
  const ii::core::FuzzStats stats =
      ii::core::run_random_injection_campaign(config);
  const auto t1 = Clock::now();
  (void)stats;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace ii;
  const unsigned cores = std::thread::hardware_concurrency();

  // 1. Blind campaign across releases (the original experiment).
  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    core::FuzzConfig config{};
    config.version = version;
    config.iterations = 60;
    config.seed = 7;
    config.platform.machine_frames = 8192;
    config.platform.dom0_pages = 128;
    config.platform.guest_pages = 64;
    const core::FuzzStats stats = core::run_random_injection_campaign(config);
    std::printf("== Xen %s ==\n%s\n", version.to_string().c_str(),
                stats.render().c_str());
  }

  // 2. Warm (delta rewind) vs cold (boot per iteration) throughput.
  for (const bool warm : {true, false}) {
    const double ms = run_blind_campaign_ms(warm);
    const double iters_per_sec = 200.0 / (ms / 1000.0);
    std::printf("blind campaign %s: 200 iterations in %.1f ms "
                "(%.0f iterations/sec)\n",
                warm ? "warm" : "cold", ms, iters_per_sec);
    std::printf("BENCH_JSON {\"name\":\"fuzz_blind_%s_200\","
                "\"wall_ms\":%.1f,\"iters_per_sec\":%.1f,"
                "\"host_cores\":%u}\n",
                warm ? "warm" : "cold", ms, iters_per_sec, cores);
  }

  // 3. Guided vs blind coverage at equal budgets. The strictly-more gate
  // applies at 1500 iterations, where the feedback loop has had time to
  // pay for its corpus warm-up; the 400-iteration cells are recorded as
  // the honest short-budget picture (guided usually ahead, not always).
  bool guided_always_ahead = true;
  for (const unsigned budget : {400u, 1500u}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const auto t0 = Clock::now();
      const core::SeqFuzzStats g =
          core::run_sequence_fuzzer(seq_config(seed, budget, true));
      const auto t1 = Clock::now();
      const core::SeqFuzzStats b =
          core::run_sequence_fuzzer(seq_config(seed, budget, false));
      const double guided_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const bool ahead = g.coverage_points > b.coverage_points;
      if (budget >= 1500) guided_always_ahead = guided_always_ahead && ahead;
      std::printf("seq fuzzer seed %llu @%u: guided %zu vs blind %zu "
                  "points %s(guided: %.1f ms, %.0f iterations/sec)\n",
                  static_cast<unsigned long long>(seed), budget,
                  g.coverage_points, b.coverage_points,
                  ahead ? "" : "[GUIDED BEHIND] ", guided_ms,
                  budget / (guided_ms / 1000.0));
      std::printf("BENCH_JSON {\"name\":\"fuzz_guided_vs_blind_s%llu_i%u\","
                  "\"guided_points\":%zu,\"blind_points\":%zu,"
                  "\"guided_wall_ms\":%.1f,\"host_cores\":%u}\n",
                  static_cast<unsigned long long>(seed), budget,
                  g.coverage_points, b.coverage_points, guided_ms, cores);
    }
  }
  std::printf("guided strictly ahead on all 1500-iteration cells: %s\n",
              guided_always_ahead ? "yes" : "NO");

  // 4. Coverage growth per 1k iterations of one longer guided run.
  const core::SeqFuzzStats curve =
      core::run_sequence_fuzzer(seq_config(7, 3000, true));
  std::printf("coverage curve (seed 7, per 1k iterations):");
  for (const std::size_t points : curve.coverage_curve) {
    std::printf(" %zu", points);
  }
  std::printf(" / %zu total\n", core::CoverageMap::total_points());

  return guided_always_ahead ? 0 : 1;
}
