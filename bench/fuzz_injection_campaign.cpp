// Randomized injection campaign (paper §IV-C's fuzz-style suggestion,
// implemented as an extension experiment).
//
// Runs the same seeded random write-what-where injections against the three
// releases and prints the outcome distributions. Expected shape: the
// hardened release converts part of the crash/violation mass into
// handled/no-effect outcomes (the reserved-slot and event-loop checks), but
// wild physical writes remain dangerous everywhere — no version re-validates
// state that was corrupted behind its back, which is exactly why the paper
// wants intrusion *handling* assessed, not just bug presence.
#include <cstdio>

#include "core/fuzz.hpp"

int main() {
  using namespace ii;
  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    core::FuzzConfig config{};
    config.version = version;
    config.iterations = 60;
    config.seed = 7;
    config.platform.machine_frames = 8192;
    config.platform.dom0_pages = 128;
    config.platform.guest_pages = 64;
    const core::FuzzStats stats = core::run_random_injection_campaign(config);
    std::printf("== Xen %s ==\n%s\n", version.to_string().c_str(),
                stats.render().c_str());
  }
  return 0;
}
