#!/usr/bin/env bash
# Chaos soak: drive campaign_cli through seeded fault plans and gate on
# the robustness contract (DESIGN.md §14):
#
#   1. determinism — the same --chaos-seed/--chaos-plan twice produces a
#      byte-identical fault schedule log (cmp);
#   2. absorption  — a campaign under journal/worker/recovery faults still
#      terminates and its CSV report is byte-identical (cmp) to the
#      fault-free baseline;
#   3. resume      — a campaign killed by a supervisor.kill fault exits 3
#      with an intact journal, and resuming (repeatedly, if the plan kills
#      a resume too) converges to the byte-identical baseline CSV;
#   4. degradation — a status server whose sends all fail never takes the
#      campaign down.
#
# Everything runs --threads 1 --deterministic: the fault *decisions* are
# thread-count independent, but attributing occurrence indices to threads
# is not, and the schedule log itself is a cmp gate here (see chaos.hpp).
#
# Usage: bench/chaos_soak.sh [build-dir] [n-seeds]
set -u

build="${1:-build}"
nseeds="${2:-8}"
cli="$build/examples/campaign_cli"
[ -x "$cli" ] || { echo "chaos_soak: $cli not built" >&2; exit 2; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
fail=0
note() { echo "chaos_soak: $*"; }
bad() { echo "chaos_soak: FAIL: $*" >&2; fail=1; }

# Small matrix, fixed shape: every run below must render this exact CSV.
common=(--case XSA-212-priv --threads 1 --deterministic --retries 2 --recover --csv)

note "baseline (fault-free)"
"$cli" "${common[@]}" > "$work/baseline.csv" || { bad "baseline run failed"; exit 1; }

# Faults the harness must absorb without changing the report: lost/torn
# journal lines, flush errors, worker crashes and stalls. These are
# invisible to cell results by design — a crashed worker's use case re-runs
# to the identical values. cell.alloc_fail and recover.abort are *not* in
# this plan: they legitimately change the report (attempts/recovered
# columns record that the retry ladder ran), so they get a containment
# gate below instead. net.drop is absent for the same reason (dropping
# attack-sim traffic changes use-case verdicts; unit tests cover it), and
# status.send_fail is gated separately at the end.
plan='journal.write_fail=100,journal.torn=100,journal.fsync_fail=100'
plan="$plan,worker.crash=200,worker.stall=50"

# Faults whose effect is *visible* in the report but must stay contained:
# the campaign exits 0, every fault lands in the schedule log, and the
# schedule is reproducible.
contain_plan='cell.alloc_fail=150,recover.abort=300'

for seed in $(seq 1 "$nseeds"); do
  j="$work/j$seed.jsonl"

  # Gate 2: faults absorbed, report identical.
  "$cli" "${common[@]}" --journal "$j" \
         --chaos-seed "$seed" --chaos-plan "$plan" \
         --chaos-log "$work/logA$seed" > "$work/runA$seed.csv"
  rc=$?
  if [ "$rc" -ne 0 ]; then
    bad "seed $seed: chaos run exited $rc"
    continue
  fi
  cmp -s "$work/runA$seed.csv" "$work/baseline.csv" \
    || bad "seed $seed: chaos CSV differs from baseline"

  # Gate 1: same seed + same plan => byte-identical schedule.
  rm -f "$j"
  "$cli" "${common[@]}" --journal "$j" \
         --chaos-seed "$seed" --chaos-plan "$plan" \
         --chaos-log "$work/logB$seed" > /dev/null \
    || bad "seed $seed: repeat chaos run failed"
  cmp -s "$work/logA$seed" "$work/logB$seed" \
    || bad "seed $seed: fault schedule not reproducible"

  # Containment gate: visible faults retry/degrade but never take the
  # campaign down, and their schedule is reproducible too.
  "$cli" "${common[@]}" \
         --chaos-seed "$seed" --chaos-plan "$contain_plan" \
         --chaos-log "$work/logC$seed" > /dev/null \
    || bad "seed $seed: containment run failed"
  "$cli" "${common[@]}" \
         --chaos-seed "$seed" --chaos-plan "$contain_plan" \
         --chaos-log "$work/logD$seed" > /dev/null \
    || bad "seed $seed: repeat containment run failed"
  cmp -s "$work/logC$seed" "$work/logD$seed" \
    || bad "seed $seed: containment schedule not reproducible"

  # Gate 3: kill mid-campaign (after the seed-th journal append), resume
  # until done, converge to the baseline CSV. Resumes append fewer fresh
  # cells each round, so a kill-looping plan still converges; cap the
  # rounds anyway.
  # The matrix has 6 cells, so the kill occurrence must stay in 1..6 (a
  # later occurrence never fires). Each CLI invocation is a fresh engine,
  # so the same occurrence re-fires on every resume round — convergence
  # still holds because each round journals kill_occ more cells.
  kill_occ=$(( (seed - 1) % 6 + 1 ))
  k="$work/k$seed.jsonl"
  rm -f "$k"
  "$cli" "${common[@]}" --journal "$k" \
         --chaos-seed "$seed" --chaos-plan "supervisor.kill@$kill_occ" \
         > /dev/null 2>&1
  rc=$?
  if [ "$rc" -ne 3 ]; then
    bad "seed $seed: kill run exited $rc, want 3"
    continue
  fi
  rounds=0 rc=3
  while [ "$rc" -eq 3 ] && [ "$rounds" -lt 15 ]; do
    "$cli" "${common[@]}" --journal "$k" --resume \
           --chaos-seed "$seed" --chaos-plan "supervisor.kill@$kill_occ" \
           > "$work/resumed$seed.csv" 2>/dev/null
    rc=$?
    rounds=$((rounds + 1))
  done
  if [ "$rc" -ne 0 ]; then
    bad "seed $seed: resume never completed (rc=$rc after $rounds rounds)"
    continue
  fi
  cmp -s "$work/resumed$seed.csv" "$work/baseline.csv" \
    || bad "seed $seed: resumed CSV differs from baseline"
  note "seed $seed ok (resume converged in $rounds round(s))"
done

# Gate 4: telemetry degradation. Every response send fails; the campaign
# must still exit 0 with the baseline report while the server soaks up the
# errors. The poller's request count is nondeterministic, so no cmp on the
# schedule here — the gate is campaign survival + report identity.
note "status.send_fail degradation"
"$cli" "${common[@]}" --status-port 0 \
       --chaos-seed 99 --chaos-plan 'status.send_fail=1000' \
       > "$work/status.csv" 2>"$work/status.err" &
cli_pid=$!
port=''
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*status server on port \([0-9]*\).*/\1/p' "$work/status.err")
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -n "$port" ]; then
  # Poke the endpoint while the campaign runs; failures are the point.
  curl -s -m 2 "http://127.0.0.1:$port/status" > /dev/null 2>&1 || true
  curl -s -m 2 "http://127.0.0.1:$port/metrics" > /dev/null 2>&1 || true
fi
wait "$cli_pid"
rc=$?
[ "$rc" -eq 0 ] || bad "status degradation run exited $rc"
cmp -s "$work/status.csv" "$work/baseline.csv" \
  || bad "status degradation run changed the report"

if [ "$fail" -ne 0 ]; then
  echo "chaos_soak: FAILED"
  exit 1
fi
note "OK ($nseeds seeds)"
