// Hardening ablation (extension, DESIGN.md §7).
//
// The paper attributes Xen 4.13's ability to *handle* two of the four
// injected states to one hardening change: the removal of the guest-
// reachable linear-page-table window (§VIII). This experiment isolates that
// claim: it runs the injection campaign on a 4.8 code base with each
// hardening knob toggled independently and shows exactly which knob flips
// which Table III cell from "violated" to "handled".
#include <cstdio>

#include "core/campaign.hpp"
#include "xsa/usecases.hpp"

namespace {

struct Variant {
  const char* name;
  ii::hv::VersionPolicy policy;
};

}  // namespace

int main() {
  using namespace ii;

  const auto base = hv::VersionPolicy::for_version(hv::kXen48);
  auto hardened = base;
  hardened.guest_linear_alias_present = false;
  hardened.strict_reserved_slot_check = true;

  const Variant variants[] = {
      {"4.8 stock (all fixes, no 4.9 hardening)", base},
      {"4.8 + strict reserved-slot access check", hardened},
  };

  const auto cases = xsa::make_paper_use_cases();
  std::puts("== Hardening ablation ==========================================");
  std::puts("variant / use case -> err_state, violation, handled\n");
  for (const Variant& variant : variants) {
    std::printf("-- %s\n", variant.name);
    for (const auto& use_case : cases) {
      guest::PlatformConfig pc{};
      pc.version = variant.policy.version;
      pc.policy_override = variant.policy;
      pc.injector_enabled = true;
      guest::VirtualPlatform platform{pc};
      const auto outcome = use_case->run_injection(platform);
      const bool err = use_case->erroneous_state_present(platform);
      const bool viol = use_case->security_violation(platform);
      std::printf("   %-14s err_state=%d violation=%d%s\n",
                  use_case->name().c_str(), err, viol,
                  err && !viol ? "  <-- handled" : "");
      (void)outcome;
    }
  }
  std::puts(
      "\nExpected shape: the strict reserved-slot check alone converts\n"
      "XSA-212-priv and XSA-182-test to 'handled' while leaving\n"
      "XSA-212-crash and XSA-148-priv violated — reproducing the 4.13 row\n"
      "of Table III on a 4.8 code base.");
  return 0;
}
