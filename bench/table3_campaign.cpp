// Regenerates Table III: "Results of the injection campaign in
// non-vulnerable versions" (paper §VII/§VIII).
//
// Runs the four injection scripts on fresh Xen 4.8 and 4.13 platforms and
// prints the Err.State / Sec.Viol. matrix. Expected shape: every erroneous
// state injects on both versions; 4.8 suffers all four violations; 4.13
// handles XSA-212-priv and XSA-182-test ([shield] cells) because of the
// post-4.9 removal of the guest-reachable linear-page-table window.
#include <cstdio>

#include "core/report.hpp"
#include "xsa/usecases.hpp"

int main() {
  const auto cases = ii::xsa::make_paper_use_cases();
  ii::core::CampaignConfig config{};
  config.versions = {ii::hv::kXen48, ii::hv::kXen413};
  config.modes = {ii::core::Mode::Injection};
  const ii::core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  std::puts("== Table III ===================================================");
  std::fputs(ii::core::render_table3(results).c_str(), stdout);

  std::puts("\nPer-cell detail:");
  for (const auto& cell : results) {
    std::printf("  %-14s xen %-5s err_state=%d violation=%d%s rc=%s\n",
                cell.use_case.c_str(), cell.version.to_string().c_str(),
                cell.err_state, cell.violation,
                cell.handled() ? " (handled by the system)" : "",
                ii::hv::errno_name(cell.outcome.rc));
    for (const auto& note : cell.outcome.notes) {
      std::printf("      | %s\n", note.c_str());
    }
  }
  return 0;
}
