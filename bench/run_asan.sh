#!/usr/bin/env bash
# AddressSanitizer (+UBSan) gate for the recovery path and the campaign
# supervisor: builds the tree with -DII_SANITIZE=address,undefined and runs
# the memory-sensitive test binaries — the ReHype recovery walk re-derives
# frame-table state from live page tables, which is exactly where a stale
# pointer or over-read would hide.
#
# Usage: bench/run_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-asan}"

TESTS=(hv_recovery_test core_supervisor_test core_campaign_trace_test
       hv_mmu_update_test hv_audit_exception_test core_chaos_test
       core_fuzz_test core_fuzz_seq_test)

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DII_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TESTS[@]}"

status=0
for test_bin in "${TESTS[@]}"; do
  echo "== ASan: $test_bin"
  if ! "$BUILD_DIR/tests/$test_bin"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "ASan run FAILED"
else
  echo "ASan run OK"
fi
exit "$status"
