// Regenerates the Fig. 4 / §VI validation experiment (RQ1) and the §VII
// exploit-failure check.
//
// Top half of Fig. 4: the third-party exploits against vulnerable Xen 4.6.
// Bottom half: the injector driving the same erroneous states. Expected
// shape: identical erroneous states and identical security violations in
// both rows for all four use cases, answering RQ1 positively; and every
// exploit failing on 4.8/4.13 (-EFAULT / -EINVAL / -EPERM), confirming the
// fixes before the Table III injection campaign is meaningful.
#include <cstdio>

#include "core/report.hpp"
#include "xsa/usecases.hpp"

int main() {
  const auto cases = ii::xsa::make_paper_use_cases();
  ii::core::CampaignConfig config{};  // all versions, both modes
  const ii::core::Campaign campaign{config};
  const auto results = campaign.run(cases);

  std::puts("== RQ1: exploit vs injection on vulnerable Xen 4.6 ============");
  std::fputs(ii::core::render_rq1_table(results).c_str(), stdout);

  std::puts("\n== Erroneous-state equivalence audit (the §VI-C check) ======");
  for (const auto& use_case : cases) {
    ii::guest::PlatformConfig exploit_pc{};
    exploit_pc.version = ii::hv::kXen46;
    exploit_pc.injector_enabled = false;
    ii::guest::VirtualPlatform exploit_platform{exploit_pc};
    (void)use_case->run_exploit(exploit_platform);

    ii::guest::PlatformConfig inject_pc{};
    inject_pc.version = ii::hv::kXen46;
    ii::guest::VirtualPlatform inject_platform{inject_pc};
    (void)use_case->run_injection(inject_platform);

    const std::string a =
        use_case->erroneous_state_description(exploit_platform);
    const std::string b =
        use_case->erroneous_state_description(inject_platform);
    std::printf("  %-14s %s\n", use_case->name().c_str(),
                a == b && !a.empty() ? "states IDENTICAL" : "STATES DIFFER");
    std::printf("      exploit  : %s\n      injection: %s\n", a.c_str(),
                b.c_str());
  }

  std::puts("\n== Exploit attempts on fixed versions (must all fail) =======");
  std::puts("+----------------+---------+-----------+-----------+");
  std::puts("| Use Case       | Version | completed | last rc   |");
  std::puts("+----------------+---------+-----------+-----------+");
  for (const auto& cell : results) {
    if (cell.mode != ii::core::Mode::Exploit ||
        cell.version == ii::hv::kXen46) {
      continue;
    }
    std::printf("| %-14s | %-7s | %-9s | %-9s |\n", cell.use_case.c_str(),
                cell.version.to_string().c_str(),
                cell.outcome.completed ? "yes" : "no",
                ii::hv::errno_name(cell.outcome.rc));
  }
  std::puts("+----------------+---------+-----------+-----------+");

  std::puts("\n== Injection campaign, all versions (RQ2 context) ============");
  for (const auto& cell : results) {
    if (cell.mode != ii::core::Mode::Injection) continue;
    std::printf("  %-14s xen %-5s err_state=%d violation=%d%s\n",
                cell.use_case.c_str(), cell.version.to_string().c_str(),
                cell.err_state, cell.violation,
                cell.handled() ? " (handled)" : "");
  }
  return 0;
}
