#!/usr/bin/env bash
# Static-analysis gate: the project's own analyzer (ii_analyze, src/lint/),
# clang-tidy over src/ with the curated .clang-tidy profile, and cppcheck.
# Mirrors the CI lint jobs so the gate is reproducible locally.
#
# clang-tidy/cppcheck are optional locally (the dev container may not ship
# them) — missing tools are reported and skipped, never failed. CI installs
# both, so the real gate always runs there. ii_analyze is built from this
# repo and always runs.
#
# Usage: bench/run_tidy.sh [build-dir]   (default: build)
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

status=0

# The compile database is needed by clang-tidy, and configuring also sets
# up the ii_analyze target (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the
# top-level CMakeLists).
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "== configuring $BUILD_DIR for compile_commands.json"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
fi

echo "== ii_analyze"
if [ ! -x "$BUILD_DIR/tools/ii_analyze" ]; then
  cmake --build "$BUILD_DIR" --target ii_analyze -j > /dev/null
fi
if ! "$BUILD_DIR/tools/ii_analyze" "$REPO_ROOT"; then
  status=1
fi

echo "== clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  # src/ only: tests/examples deliberately poke internals the checks flag.
  mapfile -t sources < <(find "$REPO_ROOT/src" -name '*.cpp' | sort)
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}"; then
    status=1
  fi
else
  echo "clang-tidy not installed; skipping (CI runs it)"
fi

echo "== cppcheck"
if command -v cppcheck > /dev/null 2>&1; then
  # --error-exitcode makes findings fail the gate; the suppressions mirror
  # what the compile database can't tell cppcheck (system headers, gtest).
  if ! cppcheck --enable=warning,performance,portability \
       --std=c++20 --inline-suppr --error-exitcode=1 --quiet \
       --suppress=missingIncludeSystem \
       -I "$REPO_ROOT/src" "$REPO_ROOT/src"; then
    status=1
  fi
else
  echo "cppcheck not installed; skipping (CI runs it)"
fi

if [ "$status" -ne 0 ]; then
  echo "lint gate FAILED"
else
  echo "lint gate OK"
fi
exit "$status"
